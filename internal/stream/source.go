// source.go is the multi-source fan-in half of the parallel ingestion
// front-end: RunSources runs one decoder goroutine per Source (per-site
// log file, chunk of a large file, or followed stream), each building
// pooled record batches and dispatching them straight to the shard
// channels — no single serialized dispatcher goroutine on the hot path.
//
// Determinism under fan-in rests on two mechanisms (see DESIGN.md,
// "Parallel ingestion"):
//
//   - per-source sequence numbers: source i stamps its k-th kept record
//     with seq = i<<sourceSeqShift | k, so the (time, seq) order every
//     shard folds in equals a stable sort by time of the concatenated
//     sources — the batch reference order — regardless of goroutine
//     interleaving;
//   - a per-source low-watermark merged into a global min-watermark:
//     each source publishes a promise "no record I deliver from now on
//     is older than L", batches carry the minimum promise across sources
//     at send time, and shards release reorder-buffered records only
//     strictly below the highest stamp seen. One slow source therefore
//     holds every shard's release back, which is exactly what keeps a
//     record from a lagging site from ever arriving late.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/weblog"
)

// Source is one independently decoded input of a fan-in run. Build them
// by hand over any Decoder, or with ChunkSources to split a single large
// file at record boundaries.
type Source struct {
	// Name labels the source in errors ("logs/site-a.log", "chunk 3/8").
	Name string
	// Dec yields the source's records. Each source's decoder runs on its
	// own goroutine, so decoders need not be safe for concurrent use —
	// but distinct sources must not share one decoder.
	Dec Decoder
	// Close, if non-nil, is called exactly once when the run is done with
	// the source (normally or on error). Its error is reported only if
	// the run itself succeeded.
	Close func() error
	// BaseOffset is the absolute byte offset in the underlying input at
	// which Dec starts reading — zero for a fresh input, the restored
	// SourceCheckpoint.Offset (minus any replayed CSV header) for a
	// resumed one — so checkpoints record BaseOffset + the decoder's own
	// consumed-byte count as the absolute resume point.
	BaseOffset int64
}

// sourceSeqShift positions the source index in the high bits of a fan-in
// sequence number: seq = srcIdx<<sourceSeqShift | localSeq. Sequence
// order across sources is therefore (source index, position) — the order
// records hold in the concatenation of the sources — which is how
// min-by-seq choices and equal-timestamp fold order stay deterministic
// under nondeterministic goroutine interleaving.
const sourceSeqShift = 44

// maxSources bounds a fan-in run so source indexes fit above the shift.
const maxSources = 1 << (64 - sourceSeqShift)

// unstampedMark marks a batch that carries no watermark promise (the
// single-dispatcher Ingest path); shards then fall back to the per-shard
// maxSeen watermark.
const unstampedMark = math.MinInt64

// noStampMark marks a fan-in batch sent before every source has
// published a low-watermark. Unlike unstampedMark it must NOT fall back
// to the per-shard maxSeen heuristic — cross-source disorder is
// unbounded, so the shard buffers everything until a real stamp arrives
// (or the run closes and drains in order).
const noStampMark = math.MinInt64 + 1

// minMarkNano/maxMarkNano clamp watermark arithmetic to timestamps
// time.Time.UnixNano can represent (roughly years 1678–2262): outside
// that range UnixNano's result is undefined and one absurd-year record
// would wrap the low-watermark and release shards wildly early. Clamped
// records still reorder among normal traffic exactly (the heap and
// release comparisons use time.Time, not nanos); only mutual ordering
// WITHIN a group of same-era out-of-range timestamps arriving on
// different sources is approximate. Halving keeps the −MaxSkew
// subtraction and the sentinel values well clear of overflow.
const (
	minMarkNano = math.MinInt64 / 2
	maxMarkNano = math.MaxInt64 / 2
)

// minMarkTime/maxMarkTime are the clamp bounds as instants, hoisted off
// the per-record path.
var (
	minMarkTime = time.Unix(0, minMarkNano)
	maxMarkTime = time.Unix(0, maxMarkNano)
)

// markNano is rec-time → watermark nanos with out-of-range clamping.
func markNano(ts time.Time) int64 {
	// time.Time.Before/After are exact for any year; bound first, then
	// convert only in-range values.
	switch {
	case ts.Before(minMarkTime):
		return minMarkNano
	case ts.After(maxMarkTime):
		return maxMarkNano
	default:
		return ts.UnixNano()
	}
}

// lwSlot is one source's published low-watermark, padded out to its own
// cache line. Every runner's send path scans ALL slots (stamp) while every
// runner's publishLW stores its own — with plain adjacent atomics those
// accesses false-share cache lines, and each store invalidates the line
// for every peer's next scan. Padding keeps one runner's publication
// traffic off its neighbors' lines; the pointer handed to the metrics
// watermark gauge still targets the atomic itself.
type lwSlot struct {
	v atomic.Int64
	_ [64 - 8]byte
}

// sourceRunner is one fan-in decoder goroutine's state: its private shard
// router (pending batches + event-time floors backing the published
// low-watermark) and its per-source sequence counter.
type sourceRunner struct {
	p    *Pipeline
	idx  int
	src  Source
	keep func(*weblog.Record) bool
	// mDecoded is this source's decode counter, nil when the pipeline
	// runs uninstrumented; resolved once so the decode loop only pays
	// the atomic add.
	mDecoded *obs.Counter

	// rt routes this source's records to per-shard pending batches; it is
	// owned by the runner goroutine exclusively (the capture gate only
	// touches it through park, on this same goroutine), so routing and
	// batch appends need no locking at all.
	rt *shardRouter
	// decodeHW is the highest event time decoded so far (unix nanos);
	// bounded-disorder input means every future record of this source is
	// at or above decodeHW − MaxSkew.
	decodeHW int64
	localSeq uint64

	// lw is this source's published low-watermark (unix nanos): a
	// monotone promise that every record the source has yet to deliver
	// to a shard channel has time >= lw. It advances only after a
	// channel send completes, so a batch blocked on backpressure is
	// still covered by it.
	lw *atomic.Int64
	// lws is the whole run's registry, one padded slot per source, for
	// the global min-watermark stamped onto outgoing batches.
	lws []lwSlot

	// flushReq and stop are set by the run's watcher goroutine (the
	// FlushInterval ticker and context cancellation respectively) and
	// polled with one cheap atomic load per record, so a source
	// trickling records still flushes its pending batches — and unpins
	// the global min-watermark — within the flush interval, and a
	// canceled run stops between any two records rather than every 256.
	flushReq atomic.Bool
	stop     atomic.Bool
}

// RunSources ingests every source concurrently — one decoder goroutine
// per source, all feeding the pipeline's shard workers — then closes the
// pipeline and returns the final snapshot. The snapshot is deterministic:
// byte-identical to ingesting the concatenated sources sorted stably by
// event time, provided each source's own timestamp disorder stays within
// MaxSkew (sources may lag each other arbitrarily — the min-watermark
// merge absorbs cross-source skew of any size). On a decode error or
// context cancellation the remaining sources stop and the snapshot of
// everything ingested so far is returned alongside the error.
//
// RunSources must not be mixed with Ingest or Run on the same pipeline,
// and requires reordering (MaxSkew >= 0) when run with more than one
// source. Options.NewKeep supplies each source goroutine its own filter;
// with only Options.Keep set, that single func is shared across source
// goroutines and must be safe for concurrent use. Cancellation is
// observed between records: a decoder that parks indefinitely inside
// Next (a followed stream with no new data) should wrap its reader in a
// TailReader bound to the same ctx, which turns cancellation into a
// clean EOF the runner can act on.
func (p *Pipeline) RunSources(ctx context.Context, sources []Source) (*Results, error) {
	if err := p.checkSources(sources); err != nil {
		p.Close()
		closeSources(sources) // the close-once contract holds on errors too
		return p.Snapshot(), err
	}
	// The pipeline's background flusher only serves Ingest-path pending
	// batches, which a fan-in run never populates — the watcher below
	// flushes the sources' own pendings on the same cadence instead.
	p.stopFlusher()
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	lws := make([]lwSlot, len(sources))
	for i := range lws {
		lws[i].v.Store(math.MinInt64)
	}
	errs := make([]error, len(sources))
	runners := make([]*sourceRunner, len(sources))
	var wg sync.WaitGroup
	// Install the capture gate's source table under captureMu, so a
	// checkpoint capture racing the start of the run either completes
	// before any runner decodes or sees every runner through the gate.
	p.captureMu.Lock()
	p.gate.init()
	p.gate.mu.Lock()
	p.gate.srcCkpts = make([]SourceCheckpoint, len(sources))
	for i := range sources {
		p.gate.srcCkpts[i] = SourceCheckpoint{Name: sources[i].Name, Offset: -1, DecodeHW: math.MinInt64}
	}
	p.gate.mu.Unlock()
	restored := p.restored
	p.captureMu.Unlock()
	if restored != nil && len(restored) != len(sources) {
		p.Close()
		closeSources(sources)
		return p.Snapshot(), fmt.Errorf("stream: RunSources: restored checkpoint has %d sources, run has %d", len(restored), len(sources))
	}
	for i := range sources {
		r := &sourceRunner{
			p:        p,
			idx:      i,
			src:      sources[i],
			rt:       newShardRouter(p, true),
			decodeHW: math.MinInt64,
			lw:       &lws[i].v,
			lws:      lws,
		}
		if restored != nil {
			// Source order determines sequence numbering (and so every
			// min-by-seq analyzer choice); a renamed or reordered source
			// list would silently break restore parity.
			if restored[i].Name != sources[i].Name {
				p.Close()
				closeSources(sources)
				return p.Snapshot(), fmt.Errorf("stream: RunSources: restored source %d is %q, run has %q (sources must keep their order across a restore)", i, restored[i].Name, sources[i].Name)
			}
			r.localSeq = restored[i].LocalSeq
			r.decodeHW = restored[i].DecodeHW
		}
		r.keep = p.opts.Keep
		if p.opts.NewKeep != nil {
			r.keep = p.opts.NewKeep()
		}
		if m := p.metrics; m != nil {
			r.mDecoded = m.sourceCounter(sources[i].Name)
			m.bindSourceWatermark(sources[i].Name, &lws[i].v)
		}
		runners[i] = r
		wg.Add(1)
		p.gate.mu.Lock()
		p.gate.active++
		p.gate.mu.Unlock()
		go func(i int) {
			defer wg.Done()
			errs[i] = r.run(runCtx)
			r.leaveGate(errs[i])
			if errs[i] != nil {
				cancel() // stop the other sources; partial results survive
			}
		}(i)
	}
	// The watcher always ticks, even when the caller disabled background
	// flushing (FlushInterval < 0): for fan-in, source-level flushing is
	// not just snapshot freshness — it is what lets a source that pends
	// little (or whose records are all filtered) keep publishing its
	// low-watermark, without which the min-stamp pins at its floor and
	// every shard buffers toward O(input). Flush timing never changes
	// results.
	flushEvery := p.opts.FlushInterval
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	watcherDone := make(chan struct{})
	go watchSources(runCtx, flushEvery, runners, watcherDone)
	wg.Wait()
	cancel() // release the watcher even on a clean finish
	<-watcherDone
	p.Close()

	runErr := firstSourceError(errs, ctx)
	if err := closeSources(sources); err != nil && runErr == nil {
		runErr = err
	}
	return p.Snapshot(), runErr
}

// closeSources runs every source's Close hook, returning the first
// failure.
func closeSources(sources []Source) error {
	var first error
	for i := range sources {
		if c := sources[i].Close; c != nil {
			if err := c(); err != nil && first == nil {
				first = fmt.Errorf("stream: closing source %s: %w", sources[i].Name, err)
			}
		}
	}
	return first
}

// checkSources validates a fan-in configuration before any goroutine
// starts.
func (p *Pipeline) checkSources(sources []Source) error {
	if len(sources) == 0 {
		return fmt.Errorf("stream: RunSources: no sources")
	}
	if len(sources) > maxSources {
		return fmt.Errorf("stream: RunSources: %d sources exceeds the %d maximum", len(sources), maxSources)
	}
	if p.opts.MaxSkew < 0 && len(sources) > 1 {
		return fmt.Errorf("stream: RunSources: reordering is disabled (MaxSkew < 0), which cannot merge %d sources deterministically", len(sources))
	}
	return nil
}

// firstSourceError picks the run's reported error: the first real decode
// or send failure in source order — deterministic even though failures
// race — falling back to the caller's cancellation. Cancellation is
// matched with errors.Is, so a sibling's wrapped cancellation artifact
// (a ctx-aware reader failing after another source's genuine error
// triggered the cancel) never outranks the error that caused it.
func firstSourceError(errs []error, ctx context.Context) error {
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) {
			return e
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// watchSources is one goroutine per fan-in run: it raises every
// runner's flush flag each FlushInterval and their stop flags on
// cancellation, so the runners themselves only ever pay an atomic load
// per record. A runner blocked inside its decoder's Next cannot observe
// either flag until the call returns — sources that may park waiting
// for data (followed streams) should wrap their reader in a TailReader
// bound to the same context, which turns cancellation into EOF.
func watchSources(ctx context.Context, flushEvery time.Duration, runners []*sourceRunner, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(flushEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			for _, r := range runners {
				r.stop.Store(true)
			}
			return
		case <-t.C:
			for _, r := range runners {
				r.flushReq.Store(true)
			}
		}
	}
}

// checkpointNow reads the runner's resume point: the absolute byte
// offset just past the last decoded record (-1 when the decoder does
// not track offsets), the CSV header length for header replay, and the
// counters a resumed runner must be seeded with. Only the runner's own
// goroutine (or the capture gate, with the runner parked) may call it.
func (r *sourceRunner) checkpointNow() SourceCheckpoint {
	ck := SourceCheckpoint{
		Name:     r.src.Name,
		Offset:   -1,
		LocalSeq: r.localSeq,
		DecodeHW: r.decodeHW,
	}
	if ot, ok := r.src.Dec.(OffsetTracker); ok {
		ck.Offset = r.src.BaseOffset + ot.Offset()
	}
	if hl, ok := r.src.Dec.(interface{ HeaderLen() int64 }); ok {
		ck.HeaderLen = hl.HeaderLen()
	}
	return ck
}

// park services a checkpoint capture: flush every pending batch to the
// shard channels (the workers are still draining, so this cannot
// deadlock), record the resume point, and wait at this record boundary
// until the capture completes. The gate check sits BEFORE Next in the
// run loop — after a record is decoded the offset is already past it,
// so parking post-decode would lose that record on restore.
func (r *sourceRunner) park(ctx context.Context) error {
	if err := r.flushAll(ctx); err != nil {
		return err
	}
	g := &r.p.gate
	g.mu.Lock()
	g.srcCkpts[r.idx] = r.checkpointNow()
	g.parked++
	g.cond.Broadcast()
	for g.want.Load() {
		g.cond.Wait()
	}
	g.parked--
	g.mu.Unlock()
	return nil
}

// leaveGate retires the runner from the capture gate. On a clean EOF it
// records the final resume point, so captures taken after this source
// finishes (the end-of-run checkpoint especially) still carry every
// source's exact position. On error or cancellation it invalidates the
// entry instead: an aborted runner may have decoded records it never
// dispatched (the in-flight batch is forfeit on cancel), so its decoder
// offset overstates the folded state — recording it would make a
// post-cancel capture silently skip those records on restore. The
// invalid offset makes any such capture fail loudly.
func (r *sourceRunner) leaveGate(runErr error) {
	g := &r.p.gate
	g.mu.Lock()
	if g.srcCkpts != nil {
		if runErr == nil {
			g.srcCkpts[r.idx] = r.checkpointNow()
		} else {
			g.srcCkpts[r.idx] = SourceCheckpoint{Name: r.src.Name, Offset: -1, DecodeHW: math.MinInt64}
		}
	}
	g.active--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// run is one source goroutine: decode, filter, stamp per-source
// sequence numbers, batch per shard, and dispatch with min-watermark
// stamps until EOF, error, or cancellation.
func (r *sourceRunner) run(ctx context.Context) error {
	for {
		if r.p.gate.want.Load() {
			if err := r.park(ctx); err != nil {
				return err
			}
		}
		rec, err := r.src.Dec.Next()
		if err == io.EOF {
			if ferr := r.flushAll(ctx); ferr != nil {
				return ferr
			}
			r.lw.Store(math.MaxInt64) // this source no longer bounds the merge
			return nil
		}
		if err != nil {
			// Hand over what decoded cleanly before the error, so partial
			// results match Run's decode-error semantics per source.
			if ferr := r.flushAll(ctx); ferr != nil {
				return ferr
			}
			r.lw.Store(math.MaxInt64)
			return fmt.Errorf("source %s: %w", r.src.Name, err)
		}
		if r.stop.Load() {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if r.flushReq.Load() {
			r.flushReq.Store(false)
			if ferr := r.flushAll(ctx); ferr != nil {
				return ferr
			}
		}
		// Advance the decode high-water mark before the keep filter:
		// dropped records' timestamps bound future records just as kept
		// ones do (the disorder contract covers the whole source), and a
		// source whose prefix is entirely filtered must still move its
		// low-watermark or it pins the global min and stalls every
		// shard's release. Publication itself waits for the next send or
		// watcher flush — stamps are only read at send time, so
		// per-record publication would buy no earlier release while
		// paying an O(shards) scan and a shared atomic store per record.
		if r.mDecoded != nil {
			r.mDecoded.Inc()
		}
		t := markNano(rec.Time)
		if t > r.decodeHW {
			r.decodeHW = t
		}
		if r.keep != nil && !r.keep(&rec) {
			r.p.dropped.Add(1)
			if m := r.p.metrics; m != nil {
				m.dropped.Inc()
			}
			continue
		}
		r.localSeq++
		seq := uint64(r.idx)<<sourceSeqShift | r.localSeq
		si := r.rt.route(&rec)
		if r.rt.add(si, rec, seq, t) {
			if err := r.send(ctx, si); err != nil {
				return err
			}
		}
	}
}

// send stamps the pending batch for shard si with the current global
// min-watermark and delivers it, then — only after the send completes —
// lets this source's low-watermark advance past the batch's records. The
// router resets the shard's pending floor at take, which is safe: this
// goroutine republishes the watermark only below, after the send, so the
// in-flight batch stays covered by the previously published promise.
func (r *sourceRunner) send(ctx context.Context, si int) error {
	b := r.rt.take(si)
	if b == nil {
		return nil
	}
	if mark := r.stamp(); mark == math.MinInt64 {
		b.mark = noStampMark // some source has not bounded itself yet
	} else {
		b.mark = mark
	}
	if err := r.p.send(ctx, r.p.shards[si], b); err != nil {
		// The batch never reached its shard; recycle it so a canceled
		// fan-in does not leak pool capacity.
		r.p.recycle(b)
		return err
	}
	// The batch is now in FIFO channel order: anything this source sends
	// later arrives after it, so the low-watermark may move past it.
	r.publishLW()
	return nil
}

// flushAll hands over every pending batch (shard order) without waiting
// for them to fill, then publishes the low-watermark unconditionally —
// this is what keeps a source whose records are all filtered (nothing
// ever pends or sends) publishing on the watcher's cadence instead of
// pinning the global min-stamp at its floor.
func (r *sourceRunner) flushAll(ctx context.Context) error {
	var flushed uint64
	for si := range r.rt.pending {
		if b := r.rt.pending[si]; b != nil && len(b.recs) > 0 {
			flushed++
		}
		if err := r.send(ctx, si); err != nil {
			return err
		}
	}
	r.publishLW()
	if flushed > 0 {
		if m := r.p.metrics; m != nil {
			m.flushed.Add(flushed)
		}
	}
	return nil
}

// publishLW recomputes and publishes this source's low-watermark: the
// minimum of (highest decoded time − MaxSkew) — covering records not yet
// decoded — and every pending batch's minimum record time — covering
// records decoded but not yet sent. The value is monotone: a new record
// is always at or above decodeHW − MaxSkew, which is already at or above
// the previously published bound.
func (r *sourceRunner) publishLW() {
	lw := int64(math.MinInt64)
	if r.decodeHW != math.MinInt64 {
		lw = r.decodeHW - int64(r.p.opts.MaxSkew)
	}
	for _, m := range r.rt.pendMin {
		if m < lw {
			lw = m
		}
	}
	r.lw.Store(lw)
}

// stamp reads the global min-watermark: the lowest published promise
// across all sources. Batches stamped unstampedMark (some source has not
// bounded itself yet) never advance a shard's release watermark.
func (r *sourceRunner) stamp() int64 {
	min := int64(math.MaxInt64)
	for i := range r.lws {
		if v := r.lws[i].v.Load(); v < min {
			min = v
		}
	}
	return min
}
