package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/weblog"
)

// makeMultiSite reassigns every record of a bursty fixture to one of k
// sites deterministically, modeling the paper's estate: each τ tuple
// crawls every site, so one requesting entity's records spread across
// all per-site files — the case the fan-in watermark merge must repair.
func makeMultiSite(n int, seed int64, jitter time.Duration, k int) *weblog.Dataset {
	d := makeBursty(n, seed, jitter)
	rng := rand.New(rand.NewSource(seed * 31))
	for i := range d.Records {
		d.Records[i].Site = fmt.Sprintf("s%02d.example.edu", rng.Intn(k))
	}
	return d
}

// splitBySite partitions a dataset into per-site datasets, preserving
// the merged order within each site — every per-site file inherits the
// original's bounded timestamp disorder.
func splitBySite(d *weblog.Dataset) []*weblog.Dataset {
	bySite := make(map[string]*weblog.Dataset)
	var order []*weblog.Dataset
	for _, rec := range d.Records {
		sd := bySite[rec.Site]
		if sd == nil {
			sd = &weblog.Dataset{}
			bySite[rec.Site] = sd
			order = append(order, sd)
		}
		sd.Records = append(sd.Records, rec)
	}
	return order
}

// encodeCSV round-trips a dataset to CSV bytes.
func encodeCSV(t *testing.T, d *weblog.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := weblog.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// csvFileSources builds one CSV-decoding Source per dataset.
func csvFileSources(t *testing.T, parts []*weblog.Dataset) []Source {
	t.Helper()
	sources := make([]Source, len(parts))
	for i, part := range parts {
		sources[i] = Source{
			Name: fmt.Sprintf("site-file-%d", i),
			Dec:  NewCSVDecoder(bytes.NewReader(encodeCSV(t, part))),
		}
	}
	return sources
}

// runSourcesAllAnalyzers ingests the sources through a fan-in pipeline
// running every built-in analyzer with the standard test preprocessing.
func runSourcesAllAnalyzers(t *testing.T, sources []Source, opts Options) *Results {
	t.Helper()
	analyzers, err := NewAnalyzers(nil, AnalyzerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	enrich := poolEnrich()
	opts.NewKeep = func() func(*weblog.Record) bool { return weblog.NewPreprocessor().Keep }
	opts.Enrich = func(r *weblog.Record) { enrich(r) }
	opts.Analyzers = analyzers
	p := NewPipeline(opts)
	res, err := p.RunSources(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiSourceParity is the fan-in acceptance test: K per-site files
// (each holding one site's slice of a jittered multi-week stream, so one
// bot's records spread across every file) ingested through RunSources
// must produce snapshots byte-identical to the batch analyzers over the
// concatenated records stably sorted by time — for source counts
// {1, 3, 8} and shard counts {1, 4, 7}, with ±45s timestamp jitter.
func TestMultiSourceParity(t *testing.T) {
	for _, nSources := range []int{1, 3, 8} {
		d := makeMultiSite(parityN(t)/2, 300+int64(nSources), 45*time.Second, nSources)
		parts := splitBySite(d)
		if len(parts) != nSources {
			t.Fatalf("fixture produced %d site files, want %d", len(parts), nSources)
		}

		// The batch reference: concatenate the per-site files in source
		// order and stable-sort by time — exactly the dataset a batch
		// operator would assemble from the same files.
		ref := &weblog.Dataset{}
		for _, part := range parts {
			ref.Records = append(ref.Records, part.Records...)
		}
		ref.SortByTime() // documented stable
		want := computeBatchWants(t, ref)

		for _, shards := range []int{1, 4, 7} {
			label := fmt.Sprintf("sources=%d shards=%d", nSources, shards)
			res := runSourcesAllAnalyzers(t, csvFileSources(t, parts), Options{
				Shards:  shards,
				MaxSkew: 2 * time.Minute,
			})
			assertAllAnalyzerParity(t, want, res, label)
			if kept := uint64(len(enrichBatch(ref).Records)); res.Records != kept {
				t.Fatalf("%s: %d records folded, want %d (batch kept count)", label, res.Records, kept)
			}
		}
	}
}

// TestRunSourcesMatchesRun pins the degenerate fan-in: one source through
// RunSources yields the same snapshot as the serial Run path on the same
// bytes, shard count held fixed.
func TestRunSourcesMatchesRun(t *testing.T) {
	d := makeBursty(4000, 91, 30*time.Second)
	csvBytes := encodeCSV(t, d)

	serial := runAllOpts(t, d, Options{Shards: 3, MaxSkew: 2 * time.Minute})
	fanIn := runSourcesAllAnalyzers(t, []Source{{
		Name: "only",
		Dec:  NewCSVDecoder(bytes.NewReader(csvBytes)),
	}}, Options{Shards: 3, MaxSkew: 2 * time.Minute})
	assertResultsEqual(t, serial, fanIn, "single-source fan-in vs serial run")
}

// TestRunSourcesLaggingSource proves the min-watermark merge absorbs
// unbounded cross-source lag: one source an hour of event time behind
// the other still folds exactly like the merged sorted stream, far
// beyond the 2-minute per-source skew window.
func TestRunSourcesLaggingSource(t *testing.T) {
	d := makeMultiSite(8000, 92, 20*time.Second, 2)
	parts := splitBySite(d)

	// Shift the second site's records an hour earlier wholesale: its file
	// stays internally skew-bounded, but trails the first source by far
	// more than MaxSkew.
	for i := range parts[1].Records {
		parts[1].Records[i].Time = parts[1].Records[i].Time.Add(-time.Hour)
	}

	ref := &weblog.Dataset{}
	for _, part := range parts {
		ref.Records = append(ref.Records, part.Records...)
	}
	ref.SortByTime()
	want := computeBatchWants(t, ref)

	res := runSourcesAllAnalyzers(t, csvFileSources(t, parts), Options{
		Shards:  4,
		MaxSkew: 2 * time.Minute,
	})
	assertAllAnalyzerParity(t, want, res, "hour-lagged source")
}

// TestChunkCountInvariance pins that the chunked parallel decode never
// changes any analyzer snapshot: -decoders {1, 2, 4} over the same CSV
// and JSONL bytes produce results identical to the serial Run, across
// shard counts.
func TestChunkCountInvariance(t *testing.T) {
	d := makeBursty(parityN(t)/4, 93, 45*time.Second)
	encode := map[string]func() []byte{
		"csv": func() []byte { return encodeCSV(t, d) },
		"jsonl": func() []byte {
			var buf bytes.Buffer
			if err := weblog.WriteJSONL(&buf, d); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		},
	}
	for format, enc := range encode {
		data := enc()
		serial := runAllOpts(t, d, Options{Shards: 4, MaxSkew: 2 * time.Minute})
		for _, chunks := range []int{1, 2, 4} {
			sources, err := ChunkBytes(data, format, chunks, weblog.CLFOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if chunks > 1 && len(sources) < 2 {
				t.Fatalf("%s: %d requested chunks collapsed to %d sources on a %d-byte input",
					format, chunks, len(sources), len(data))
			}
			res := runSourcesAllAnalyzers(t, sources, Options{Shards: 4, MaxSkew: 2 * time.Minute})
			assertResultsEqual(t, serial, res,
				fmt.Sprintf("%s decoders=%d vs serial", format, chunks))
		}
	}
}

// TestRunSourcesErrors covers the fan-in's failure modes: an empty
// source set, multi-source runs with reordering disabled, and a decode
// error that must surface wrapped with its source's name while the other
// sources' partial results survive.
func TestRunSourcesErrors(t *testing.T) {
	p := NewPipeline(Options{Shards: 1})
	if _, err := p.RunSources(context.Background(), nil); err == nil {
		t.Fatal("want error for empty source set")
	}

	p = NewPipeline(Options{Shards: 1, MaxSkew: -1})
	closed := make([]int, 2)
	two := []Source{
		{Name: "a", Dec: NewCSVDecoder(strings.NewReader("")), Close: func() error { closed[0]++; return nil }},
		{Name: "b", Dec: NewCSVDecoder(strings.NewReader("")), Close: func() error { closed[1]++; return nil }},
	}
	if _, err := p.RunSources(context.Background(), two); err == nil {
		t.Fatal("want error for multi-source run with reordering disabled")
	}
	if closed[0] != 1 || closed[1] != 1 {
		t.Fatalf("Close hooks must run exactly once on validation errors too: %v", closed)
	}

	good := encodeCSV(t, makeBursty(500, 94, 0))
	bad := []byte("useragent,timestamp\nbot,not-a-time\n")
	p = NewPipeline(Options{Shards: 2})
	res, err := p.RunSources(context.Background(), []Source{
		{Name: "good.csv", Dec: NewCSVDecoder(bytes.NewReader(good))},
		{Name: "bad.csv", Dec: NewCSVDecoder(bytes.NewReader(bad))},
	})
	if err == nil || !strings.Contains(err.Error(), "bad.csv") {
		t.Fatalf("want decode error naming bad.csv, got %v", err)
	}
	if res == nil {
		t.Fatal("partial results must survive a source decode error")
	}
}

// TestRunSourcesCancel checks that cancellation stops a fan-in run
// promptly and still returns the partial snapshot alongside ctx.Err().
func TestRunSourcesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := encodeCSV(t, makeBursty(5000, 95, 0))
	p := NewPipeline(Options{Shards: 2})
	res, err := p.RunSources(ctx, []Source{
		{Name: "a", Dec: NewCSVDecoder(bytes.NewReader(data))},
	})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must still return a snapshot")
	}
}

// TestRunSourcesCloseHook checks every source's Close hook runs exactly
// once.
func TestRunSourcesCloseHook(t *testing.T) {
	data := encodeCSV(t, makeBursty(300, 96, 0))
	closed := make([]int, 2)
	var sources []Source
	for i := 0; i < 2; i++ {
		i := i
		sources = append(sources, Source{
			Name:  fmt.Sprintf("s%d", i),
			Dec:   NewCSVDecoder(bytes.NewReader(data)),
			Close: func() error { closed[i]++; return nil },
		})
	}
	p := NewPipeline(Options{Shards: 2})
	if _, err := p.RunSources(context.Background(), sources); err != nil {
		t.Fatal(err)
	}
	for i, n := range closed {
		if n != 1 {
			t.Fatalf("source %d closed %d times, want 1", i, n)
		}
	}
}

// throttledDecoder yields a fixed record every delay, n times — a stand-
// in for a slow followed stream.
type throttledDecoder struct {
	n     int
	i     int
	delay time.Duration
	base  time.Time
}

func (d *throttledDecoder) Next() (weblog.Record, error) {
	if d.i >= d.n {
		return weblog.Record{}, io.EOF
	}
	time.Sleep(d.delay)
	d.i++
	return weblog.Record{
		UserAgent: "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)",
		Time:      d.base.Add(time.Duration(d.i) * time.Second),
		IPHash:    "h1", ASN: "GOOGLE", Site: "www", Path: "/", Status: 200, Bytes: 1,
	}, nil
}

// TestRunSourcesFlushLatency pins the fan-in flush contract: a source
// trickling records far slower than it fills a batch must still surface
// them to live snapshots within FlushInterval — the watcher's flush
// flag, not batch fill, is what moves slow sources.
func TestRunSourcesFlushLatency(t *testing.T) {
	p := NewPipeline(Options{
		Shards:        1,
		BatchSize:     4096,                  // far above the ~150 records produced: only flushing delivers
		MaxSkew:       time.Millisecond,      // tiny reorder window: folds track flushes
		FlushInterval: 10 * time.Millisecond, // the latency under test
	})
	dec := &throttledDecoder{n: 200, delay: 2 * time.Millisecond,
		base: time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.RunSources(context.Background(), []Source{{Name: "slow", Dec: dec}}); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.After(300 * time.Millisecond)
	for {
		select {
		case <-deadline:
			t.Fatal("no records surfaced to a live snapshot within 300ms despite a 10ms FlushInterval")
		case <-time.After(5 * time.Millisecond):
		}
		if p.Snapshot().Records > 0 {
			break
		}
	}
	<-done
}

// TestRunSourcesFilteredSourceLiveness pins that a source whose records
// are all dropped by the keep filter still publishes its low-watermark:
// dropped records' timestamps bound future ones just as kept records
// do, so the filtered source must not pin the global min-stamp and
// stall every shard's release while it runs.
func TestRunSourcesFilteredSourceLiveness(t *testing.T) {
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	p := NewPipeline(Options{
		Shards:        1,
		BatchSize:     4,
		MaxSkew:       time.Millisecond,
		FlushInterval: 10 * time.Millisecond,
		NewKeep: func() func(*weblog.Record) bool {
			return func(r *weblog.Record) bool { return r.UserAgent != "drop-me" }
		},
	})
	dropped := &throttledDecoder{n: 150, delay: 2 * time.Millisecond, base: base}
	kept := &throttledDecoder{n: 150, delay: 2 * time.Millisecond, base: base}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := p.RunSources(context.Background(), []Source{
			{Name: "all-dropped", Dec: droppedUA{dropped}},
			{Name: "kept", Dec: kept},
		})
		if err != nil {
			t.Error(err)
		}
	}()
	deadline := time.After(250 * time.Millisecond)
	for {
		select {
		case <-deadline:
			t.Fatal("an all-filtered source stalled release: no records folded mid-run")
		case <-time.After(5 * time.Millisecond):
		}
		if p.Snapshot().Records > 0 {
			break
		}
	}
	<-done
}

// droppedUA rewrites every record's user agent so the keep filter
// rejects it.
type droppedUA struct{ d Decoder }

func (w droppedUA) Next() (weblog.Record, error) {
	rec, err := w.d.Next()
	rec.UserAgent = "drop-me"
	return rec, err
}

// TestMarkNanoClamp pins the watermark-nanos conversion against
// timestamps UnixNano cannot represent: out-of-range years clamp to the
// finite mark bounds instead of wrapping and wrecking the min-watermark
// merge, and the bounds stay clear of the stamp sentinels.
func TestMarkNanoClamp(t *testing.T) {
	old := time.Date(1599, 1, 1, 0, 0, 0, 0, time.UTC)
	far := time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := markNano(old); got != minMarkNano {
		t.Fatalf("markNano(1599) = %d, want the %d floor", got, int64(minMarkNano))
	}
	if got := markNano(far); got != maxMarkNano {
		t.Fatalf("markNano(9999) = %d, want the %d ceiling", got, int64(maxMarkNano))
	}
	now := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	if got := markNano(now); got != now.UnixNano() {
		t.Fatalf("markNano(2025) = %d, want exact UnixNano %d", got, now.UnixNano())
	}
	if minMarkNano <= noStampMark {
		t.Fatal("clamp floor must stay above the stamp sentinels")
	}
}

// TestPoisonedPoolMultiSourceParity reruns the fan-in parity check with
// the poisoning pool armed: recycled batches and release scratch are
// scribbled before reuse, so any state (or the fan-in dispatch itself)
// retaining batch memory across the concurrent source goroutines
// corrupts its own snapshot. Run with -race in CI.
func TestPoisonedPoolMultiSourceParity(t *testing.T) {
	d := makeMultiSite(12_000, 97, 45*time.Second, 3)
	parts := splitBySite(d)
	ref := &weblog.Dataset{}
	for _, part := range parts {
		ref.Records = append(ref.Records, part.Records...)
	}
	ref.SortByTime()
	want := computeBatchWants(t, ref)

	res := runSourcesAllAnalyzers(t, csvFileSources(t, parts), Options{
		Shards:         4,
		MaxSkew:        2 * time.Minute,
		poisonRecycled: true,
	})
	assertAllAnalyzerParity(t, want, res, "poisoned multi-source")
}
