package stream

import (
	"repro/internal/spoof"
	"repro/internal/weblog"
)

// spoofShard is the per-shard state of the §5.2 spoof analyzer: an exact
// per-bot ASN frequency table. State is O(bots × ASNs) — independent of
// stream length — and completely order-insensitive.
type spoofShard struct {
	ev *spoof.Evidence
}

func (s *spoofShard) Apply(r *weblog.Record, seq uint64) {
	if r.BotName == "" {
		return
	}
	s.ev.Add(r.BotName, r.ASN)
}

// spoofAnalyzer is the §5.2 analyzer: shard tables merge by plain sum
// into one spoof.Evidence, and the shared spoof back half turns it into
// Table 8 findings and Table 9 counts byte-identical to batch Detect.
type spoofAnalyzer struct {
	det spoof.Detector
}

// NewSpoofAnalyzer builds the §5.2 dominant-ASN spoof analyzer; a zero
// threshold means the paper's spoof.DefaultThreshold (0.90). Its snapshot
// type is *SpoofSnapshot.
func NewSpoofAnalyzer(threshold float64) Analyzer {
	return spoofAnalyzer{det: spoof.Detector{Threshold: threshold}}
}

func (spoofAnalyzer) Name() string { return AnalyzerSpoof }

func (spoofAnalyzer) NewState() ShardState { return &spoofShard{ev: spoof.NewEvidence()} }

func (a spoofAnalyzer) Snapshot(states []ShardState) any {
	merged := spoof.NewEvidence()
	for _, st := range states {
		merged.Merge(st.(*spoofShard).ev)
	}
	det := a.det
	// One detection pass serves both the findings and the counts: this
	// runs with every shard lock held, so it must not do the O(bots×ASNs)
	// scan twice.
	findings := det.DetectEvidence(merged)
	return &SpoofSnapshot{
		Evidence: merged,
		Findings: findings,
		Counts:   spoof.CountsFromFindings(merged, findings),
	}
}
