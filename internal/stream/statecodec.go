// statecodec.go is the serialization half of the durable-checkpoint
// contract: every built-in analyzer (and the phased wrapper) implements
// StateCodec, turning its per-shard fold state into deterministic bytes
// and back. The wire form of each state is a gob-encoded struct of
// SORTED SLICES — never maps — so encoding the same state twice yields
// identical bytes, which is what lets the crash-injection and
// merge-equivalence suites assert byte-level parity and keeps golden
// checkpoint fixtures stable. Analyzer configuration (thresholds, site
// filters, gaps, phase schedules) is deliberately NOT serialized: it
// lives in the Analyzer value, and DecodeState re-injects it, so a
// checkpoint restored under a different configuration folds under the
// restoring process's configuration (the contract core.StreamOptions
// documents).
//
// Versioning note: the container format (internal/checkpoint) carries
// the version number; within a version, gob's decode-by-field-name
// tolerance gives these wire structs forward/backward slack — unknown
// fields are ignored, missing fields decode to zero values.
package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"repro/internal/anomaly"
	"repro/internal/checkfreq"
	"repro/internal/compliance"
	"repro/internal/robots"
	"repro/internal/session"
	"repro/internal/spoof"
	"repro/internal/weblog"
)

// StateCodec is optionally implemented by Analyzers whose per-shard
// states can be checkpointed. EncodeState must be deterministic (equal
// states yield equal bytes) and must not mutate the state; DecodeState
// must return a state that folds future records exactly as the encoded
// one would have, re-deriving any configuration from the analyzer
// itself. Pipeline.CaptureCheckpoint requires every analyzer in the
// pipeline to implement it.
type StateCodec interface {
	// EncodeState serializes one per-shard state produced by this
	// analyzer's NewState.
	EncodeState(st ShardState) ([]byte, error)
	// DecodeState reconstructs a per-shard state from EncodeState bytes.
	DecodeState(data []byte) (ShardState, error)
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// tupleLess orders τ tuples lexicographically — the tie-break every wire
// struct sorted by tuple uses.
func tupleLess(a, b weblog.Tuple) bool {
	if a.ASN != b.ASN {
		return a.ASN < b.ASN
	}
	if a.IPHash != b.IPHash {
		return a.IPHash < b.IPHash
	}
	return a.UserAgent < b.UserAgent
}

// --- compliance ---

// wireDelay is one (bot, τ tuple) crawl-delay accumulator on the wire.
type wireDelay struct {
	Bot       string
	Tuple     weblog.Tuple
	Count     int
	Last      time.Time
	Successes int
	Trials    int
}

// wireMeasure is one bot's measurement for one directive on the wire.
type wireMeasure struct {
	Bot string
	M   compliance.Measurement
}

// wireCount is one bot's integer tally on the wire.
type wireCount struct {
	Bot string
	N   int
}

// wireFlag is one bot's boolean on the wire.
type wireFlag struct {
	Bot string
	V   bool
}

// wireCat is one bot's first-seen category label with its global ingest
// sequence number on the wire.
type wireCat struct {
	Bot string
	Seq uint64
	Val string
}

// wireCompliance is the compliance analyzer's shard state on the wire.
// The threshold and allowed prefix are config, not state — the decoding
// analyzer re-supplies them.
type wireCompliance struct {
	Delays   []wireDelay
	Endpoint []wireMeasure
	Disallow []wireMeasure
	Access   []wireCount
	Checked  []wireFlag
	Category []wireCat
	Records  uint64
}

func sortMeasures(m map[string]compliance.Measurement) []wireMeasure {
	out := make([]wireMeasure, 0, len(m))
	for bot, v := range m {
		out = append(out, wireMeasure{Bot: bot, M: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bot < out[j].Bot })
	return out
}

func sortCats(m map[string]catSeen) []wireCat {
	out := make([]wireCat, 0, len(m))
	for bot, c := range m {
		out = append(out, wireCat{Bot: bot, Seq: c.seq, Val: c.val})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bot < out[j].Bot })
	return out
}

func catsFromWire(ws []wireCat) map[string]catSeen {
	m := make(map[string]catSeen, len(ws))
	for _, w := range ws {
		m[w.Bot] = catSeen{seq: w.Seq, val: w.Val}
	}
	return m
}

// EncodeState implements StateCodec for the compliance analyzer.
func (a complianceAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*shardAgg)
	if !ok {
		return nil, fmt.Errorf("stream: compliance codec: unexpected state %T", st)
	}
	w := wireCompliance{Records: s.records}
	w.Delays = make([]wireDelay, 0, len(s.delays))
	for k, ds := range s.delays {
		w.Delays = append(w.Delays, wireDelay{
			Bot: k.bot, Tuple: k.tuple,
			Count: ds.count, Last: ds.last,
			Successes: ds.successes, Trials: ds.trials,
		})
	}
	sort.Slice(w.Delays, func(i, j int) bool {
		if w.Delays[i].Bot != w.Delays[j].Bot {
			return w.Delays[i].Bot < w.Delays[j].Bot
		}
		return tupleLess(w.Delays[i].Tuple, w.Delays[j].Tuple)
	})
	w.Endpoint = sortMeasures(s.endpoint)
	w.Disallow = sortMeasures(s.disallow)
	w.Access = make([]wireCount, 0, len(s.access))
	for bot, n := range s.access {
		w.Access = append(w.Access, wireCount{Bot: bot, N: n})
	}
	sort.Slice(w.Access, func(i, j int) bool { return w.Access[i].Bot < w.Access[j].Bot })
	w.Checked = make([]wireFlag, 0, len(s.checked))
	for bot, v := range s.checked {
		w.Checked = append(w.Checked, wireFlag{Bot: bot, V: v})
	}
	sort.Slice(w.Checked, func(i, j int) bool { return w.Checked[i].Bot < w.Checked[j].Bot })
	w.Category = sortCats(s.category)
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the compliance analyzer.
func (a complianceAnalyzer) DecodeState(data []byte) (ShardState, error) {
	var w wireCompliance
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: compliance codec: %w", err)
	}
	s := newShardAgg(a.cfg)
	s.records = w.Records
	for _, d := range w.Delays {
		s.delays[delayKey{bot: d.Bot, tuple: d.Tuple}] = &delayState{
			count: d.Count, last: d.Last,
			successes: d.Successes, trials: d.Trials,
		}
	}
	for _, m := range w.Endpoint {
		s.endpoint[m.Bot] = m.M
	}
	for _, m := range w.Disallow {
		s.disallow[m.Bot] = m.M
	}
	for _, c := range w.Access {
		s.access[c.Bot] = c.N
	}
	for _, f := range w.Checked {
		s.checked[f.Bot] = f.V
	}
	s.category = catsFromWire(w.Category)
	return s, nil
}

// --- cadence ---

// wireChecks is one bot's robots.txt fetch timestamps on the wire.
type wireChecks struct {
	Bot   string
	Times []time.Time
}

// wireCadence is the cadence analyzer's shard state on the wire. The
// site filter is config; the decoding analyzer rebuilds it.
type wireCadence struct {
	End    time.Time
	Checks []wireChecks
	Cats   []wireCat
}

// EncodeState implements StateCodec for the cadence analyzer.
func (a cadenceAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*cadenceShard)
	if !ok {
		return nil, fmt.Errorf("stream: cadence codec: unexpected state %T", st)
	}
	w := wireCadence{End: s.end, Cats: sortCats(s.cats)}
	w.Checks = make([]wireChecks, 0, len(s.checks))
	for bot, ts := range s.checks {
		w.Checks = append(w.Checks, wireChecks{Bot: bot, Times: ts})
	}
	sort.Slice(w.Checks, func(i, j int) bool { return w.Checks[i].Bot < w.Checks[j].Bot })
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the cadence analyzer.
func (a cadenceAnalyzer) DecodeState(data []byte) (ShardState, error) {
	var w wireCadence
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: cadence codec: %w", err)
	}
	s := &cadenceShard{
		siteOK: checkfreq.SiteFilter(a.sites),
		end:    w.End,
		checks: make(map[string][]time.Time, len(w.Checks)),
		cats:   catsFromWire(w.Cats),
	}
	for _, c := range w.Checks {
		s.checks[c.Bot] = c.Times
	}
	return s, nil
}

// --- spoof ---

// wireASNCount is one (ASN, count) entry of a bot's frequency row.
type wireASNCount struct {
	ASN string
	N   int
}

// wireSpoofBot is one bot's ASN frequency row on the wire.
type wireSpoofBot struct {
	Bot  string
	ASNs []wireASNCount
}

// wireSpoof is the spoof analyzer's shard state on the wire.
type wireSpoof struct {
	Bots []wireSpoofBot
}

// EncodeState implements StateCodec for the spoof analyzer.
func (a spoofAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*spoofShard)
	if !ok {
		return nil, fmt.Errorf("stream: spoof codec: unexpected state %T", st)
	}
	w := wireSpoof{Bots: make([]wireSpoofBot, 0, len(s.ev.Counts))}
	for bot, asns := range s.ev.Counts {
		row := wireSpoofBot{Bot: bot, ASNs: make([]wireASNCount, 0, len(asns))}
		for asn, n := range asns {
			row.ASNs = append(row.ASNs, wireASNCount{ASN: asn, N: n})
		}
		sort.Slice(row.ASNs, func(i, j int) bool { return row.ASNs[i].ASN < row.ASNs[j].ASN })
		w.Bots = append(w.Bots, row)
	}
	sort.Slice(w.Bots, func(i, j int) bool { return w.Bots[i].Bot < w.Bots[j].Bot })
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the spoof analyzer.
func (a spoofAnalyzer) DecodeState(data []byte) (ShardState, error) {
	var w wireSpoof
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: spoof codec: %w", err)
	}
	ev := spoof.NewEvidence()
	for _, row := range w.Bots {
		for _, e := range row.ASNs {
			ev.AddN(row.Bot, e.ASN, e.N)
		}
	}
	return &spoofShard{ev: ev}, nil
}

// --- session ---

// wireOpenSession is one τ tuple's open session on the wire.
type wireOpenSession struct {
	Tuple    weblog.Tuple
	Start    time.Time
	End      time.Time
	Category string
	Accesses int
	Bytes    int64
}

// wireCatCount / wireCatBytes / wireDayCount flatten the closed
// Summary's maps into sorted slices.
type wireCatCount struct {
	Cat string
	N   int
}

type wireCatBytes struct {
	Cat string
	B   int64
}

type wireDayCount struct {
	Category string
	Day      time.Time
	N        int
}

// wireSummary is a session.Summary on the wire.
type wireSummary struct {
	Sessions        int
	Accesses        int
	Bytes           int64
	ByCategory      []wireCatCount
	BytesByCategory []wireCatBytes
	StartsPerDay    []wireDayCount
}

// wireSession is the session analyzer's shard state on the wire. The
// inactivity gap is config; lastSweep is carried for fidelity (it only
// affects sweep amortization, never results).
type wireSession struct {
	Open      []wireOpenSession
	Closed    wireSummary
	LastSweep time.Time
}

func summaryToWire(s *session.Summary) wireSummary {
	w := wireSummary{Sessions: s.Sessions, Accesses: s.Accesses, Bytes: s.Bytes}
	w.ByCategory = make([]wireCatCount, 0, len(s.ByCategory))
	for c, n := range s.ByCategory {
		w.ByCategory = append(w.ByCategory, wireCatCount{Cat: c, N: n})
	}
	sort.Slice(w.ByCategory, func(i, j int) bool { return w.ByCategory[i].Cat < w.ByCategory[j].Cat })
	w.BytesByCategory = make([]wireCatBytes, 0, len(s.BytesByCategory))
	for c, b := range s.BytesByCategory {
		w.BytesByCategory = append(w.BytesByCategory, wireCatBytes{Cat: c, B: b})
	}
	sort.Slice(w.BytesByCategory, func(i, j int) bool { return w.BytesByCategory[i].Cat < w.BytesByCategory[j].Cat })
	for c, days := range s.StartsPerDay {
		for d, n := range days {
			w.StartsPerDay = append(w.StartsPerDay, wireDayCount{Category: c, Day: d, N: n})
		}
	}
	sort.Slice(w.StartsPerDay, func(i, j int) bool {
		if w.StartsPerDay[i].Category != w.StartsPerDay[j].Category {
			return w.StartsPerDay[i].Category < w.StartsPerDay[j].Category
		}
		return w.StartsPerDay[i].Day.Before(w.StartsPerDay[j].Day)
	})
	return w
}

func summaryFromWire(w wireSummary) *session.Summary {
	s := session.NewSummary()
	s.Sessions = w.Sessions
	s.Accesses = w.Accesses
	s.Bytes = w.Bytes
	for _, c := range w.ByCategory {
		s.ByCategory[c.Cat] = c.N
	}
	for _, c := range w.BytesByCategory {
		s.BytesByCategory[c.Cat] = c.B
	}
	for _, d := range w.StartsPerDay {
		perDay := s.StartsPerDay[d.Category]
		if perDay == nil {
			perDay = make(map[time.Time]int)
			s.StartsPerDay[d.Category] = perDay
		}
		perDay[d.Day] = d.N
	}
	return s
}

// EncodeState implements StateCodec for the session analyzer.
func (a sessionAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*sessionShard)
	if !ok {
		return nil, fmt.Errorf("stream: session codec: unexpected state %T", st)
	}
	w := wireSession{Closed: summaryToWire(s.closed), LastSweep: s.lastSweep}
	w.Open = make([]wireOpenSession, 0, len(s.open))
	for t, ls := range s.open {
		w.Open = append(w.Open, wireOpenSession{
			Tuple: t, Start: ls.start, End: ls.end,
			Category: ls.category, Accesses: ls.accesses, Bytes: ls.bytes,
		})
	}
	sort.Slice(w.Open, func(i, j int) bool { return tupleLess(w.Open[i].Tuple, w.Open[j].Tuple) })
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the session analyzer.
func (a sessionAnalyzer) DecodeState(data []byte) (ShardState, error) {
	var w wireSession
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: session codec: %w", err)
	}
	s := &sessionShard{
		gap:       a.gap,
		open:      make(map[weblog.Tuple]*liveSession, len(w.Open)),
		closed:    summaryFromWire(w.Closed),
		lastSweep: w.LastSweep,
	}
	for _, o := range w.Open {
		s.open[o.Tuple] = &liveSession{
			start: o.Start, end: o.End,
			category: o.Category, accesses: o.Accesses, bytes: o.Bytes,
		}
	}
	return s, nil
}

// --- anomaly ---

// wireRate is one (site, τ) burst detector on the wire.
type wireRate struct {
	Site     string
	Tuple    weblog.Tuple
	Bucket   int64
	Count    float64
	LastSeen time.Time
	Mean     float64
	Var      float64
	N        uint64
	Vals     []float64
}

// wireGap is one (bot, τ) cadence detector on the wire.
type wireGap struct {
	Bot   string
	Tuple weblog.Tuple
	Last  time.Time
	Mean  float64
	Var   float64
	N     uint64
	Vals  []float64
}

// wireIdent is one (bot, ASN) first sighting on the wire.
type wireIdent struct {
	Bot string
	ASN string
	At  time.Time
}

// wireAnomaly is the anomaly analyzer's shard state on the wire. The
// detector configuration is not serialized — the decoding analyzer
// re-injects its own. Alerts keep their fold order (deterministic per
// shard); LastSweep is carried for fidelity only (it affects sweep
// amortization, never results).
type wireAnomaly struct {
	Rates     []wireRate
	Gaps      []wireGap
	Idents    []wireIdent
	Alerts    []anomaly.Alert
	LastSweep time.Time
}

// EncodeState implements StateCodec for the anomaly analyzer.
func (a anomalyAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*anomalyShard)
	if !ok {
		return nil, fmt.Errorf("stream: anomaly codec: unexpected state %T", st)
	}
	w := wireAnomaly{Alerts: s.alerts, LastSweep: s.lastSweep}
	w.Rates = make([]wireRate, 0, len(s.rates))
	for k, r := range s.rates {
		w.Rates = append(w.Rates, wireRate{
			Site: k.site, Tuple: k.tuple,
			Bucket: r.Bucket, Count: r.Count, LastSeen: r.LastSeen,
			Mean: r.EWMA.Mean, Var: r.EWMA.Var, N: r.EWMA.N, Vals: r.MAD.Vals,
		})
	}
	sort.Slice(w.Rates, func(i, j int) bool {
		if w.Rates[i].Site != w.Rates[j].Site {
			return w.Rates[i].Site < w.Rates[j].Site
		}
		return tupleLess(w.Rates[i].Tuple, w.Rates[j].Tuple)
	})
	w.Gaps = make([]wireGap, 0, len(s.gaps))
	for k, g := range s.gaps {
		w.Gaps = append(w.Gaps, wireGap{
			Bot: k.bot, Tuple: k.tuple, Last: g.Last,
			Mean: g.EWMA.Mean, Var: g.EWMA.Var, N: g.EWMA.N, Vals: g.MAD.Vals,
		})
	}
	sort.Slice(w.Gaps, func(i, j int) bool {
		if w.Gaps[i].Bot != w.Gaps[j].Bot {
			return w.Gaps[i].Bot < w.Gaps[j].Bot
		}
		return tupleLess(w.Gaps[i].Tuple, w.Gaps[j].Tuple)
	})
	w.Idents = make([]wireIdent, 0, len(s.idents))
	for k, at := range s.idents {
		w.Idents = append(w.Idents, wireIdent{Bot: k.bot, ASN: k.asn, At: at})
	}
	sort.Slice(w.Idents, func(i, j int) bool {
		if w.Idents[i].Bot != w.Idents[j].Bot {
			return w.Idents[i].Bot < w.Idents[j].Bot
		}
		return w.Idents[i].ASN < w.Idents[j].ASN
	})
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the anomaly analyzer.
func (a anomalyAnalyzer) DecodeState(data []byte) (ShardState, error) {
	var w wireAnomaly
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: anomaly codec: %w", err)
	}
	s := &anomalyShard{
		cfg:       a.cfg,
		rates:     make(map[rateKey]*anomaly.Rate, len(w.Rates)),
		gaps:      make(map[gapKey]*anomaly.Gaps, len(w.Gaps)),
		idents:    make(map[identKey]time.Time, len(w.Idents)),
		alerts:    w.Alerts,
		lastSweep: w.LastSweep,
	}
	for _, r := range w.Rates {
		s.rates[rateKey{site: r.Site, tuple: r.Tuple}] = &anomaly.Rate{
			Bucket: r.Bucket, Count: r.Count, LastSeen: r.LastSeen,
			EWMA: anomaly.EWMA{Mean: r.Mean, Var: r.Var, N: r.N},
			MAD:  anomaly.MAD{Vals: r.Vals},
		}
	}
	for _, g := range w.Gaps {
		s.gaps[gapKey{bot: g.Bot, tuple: g.Tuple}] = &anomaly.Gaps{
			Last: g.Last,
			EWMA: anomaly.EWMA{Mean: g.Mean, Var: g.Var, N: g.N},
			MAD:  anomaly.MAD{Vals: g.Vals},
		}
	}
	for _, id := range w.Idents {
		s.idents[identKey{bot: id.Bot, asn: id.ASN}] = id.At
	}
	return s, nil
}

// --- phased wrapper ---

// wirePhase is one phase partition's inner state on the wire.
type wirePhase struct {
	Version robots.Version
	State   []byte
}

// wirePhased is the phased wrapper's shard state on the wire: the inner
// analyzer's encoded state per phase seen, sorted by version.
type wirePhased struct {
	Phases        []wirePhase
	OutOfSchedule uint64
}

// EncodeState implements StateCodec for the phased wrapper, delegating
// each phase partition to the inner analyzer's codec. It fails if the
// inner analyzer does not implement StateCodec.
func (a phasedAnalyzer) EncodeState(st ShardState) ([]byte, error) {
	s, ok := st.(*phasedState)
	if !ok {
		return nil, fmt.Errorf("stream: phased codec: unexpected state %T", st)
	}
	codec, ok := a.inner.(StateCodec)
	if !ok {
		return nil, fmt.Errorf("stream: phased codec: inner analyzer %q is not checkpointable", a.inner.Name())
	}
	w := wirePhased{OutOfSchedule: s.outOfSchedule}
	w.Phases = make([]wirePhase, 0, len(s.states))
	for v, inner := range s.states {
		data, err := codec.EncodeState(inner)
		if err != nil {
			return nil, fmt.Errorf("stream: phased codec: phase %v: %w", v, err)
		}
		w.Phases = append(w.Phases, wirePhase{Version: v, State: data})
	}
	sort.Slice(w.Phases, func(i, j int) bool { return w.Phases[i].Version < w.Phases[j].Version })
	return gobEncode(&w)
}

// DecodeState implements StateCodec for the phased wrapper. Beyond
// restoring each phase's inner state it must also install the phase's
// batch fold: stateFold creates a FRESH state when folds[v] is nil, so
// leaving the fold unset would silently discard the restored partition
// on the next record.
func (a phasedAnalyzer) DecodeState(data []byte) (ShardState, error) {
	codec, ok := a.inner.(StateCodec)
	if !ok {
		return nil, fmt.Errorf("stream: phased codec: inner analyzer %q is not checkpointable", a.inner.Name())
	}
	var w wirePhased
	if err := gobDecode(data, &w); err != nil {
		return nil, fmt.Errorf("stream: phased codec: %w", err)
	}
	s := a.NewState().(*phasedState)
	s.outOfSchedule = w.OutOfSchedule
	for _, p := range w.Phases {
		inner, err := codec.DecodeState(p.State)
		if err != nil {
			return nil, fmt.Errorf("stream: phased codec: phase %v: %w", p.Version, err)
		}
		s.states[p.Version] = inner
		s.folds[p.Version] = batchApplier(inner)
	}
	return s, nil
}
