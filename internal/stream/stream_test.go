package stream

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/weblog"
)

// drain collects every record a decoder yields.
func drain(t *testing.T, dec Decoder) []weblog.Record {
	t.Helper()
	var out []weblog.Record
	for {
		rec, err := dec.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, rec)
	}
}

// sampleDataset builds a small hand-written dataset covering enriched and
// anonymous records, robots fetches, and empty optional fields.
func sampleDataset() *weblog.Dataset {
	t0 := time.Date(2025, 3, 1, 12, 0, 0, 0, time.UTC)
	return &weblog.Dataset{Records: []weblog.Record{
		{UserAgent: "Mozilla/5.0 (compatible; Googlebot/2.1)", Time: t0,
			IPHash: "h1", ASN: "GOOGLE", Site: "www", Path: "/robots.txt",
			Status: 200, Bytes: 120, BotName: "Googlebot", Category: "Search Engine Crawlers"},
		{UserAgent: "Mozilla/5.0 (compatible; Googlebot/2.1)", Time: t0.Add(45 * time.Second),
			IPHash: "h1", ASN: "GOOGLE", Site: "www", Path: "/page-data/a.json",
			Status: 200, Bytes: 900, Referer: "https://x/", BotName: "Googlebot", Category: "Search Engine Crawlers"},
		{UserAgent: "curl/8.0", Time: t0.Add(50 * time.Second),
			IPHash: "h2", ASN: "COMCAST", Site: "people", Path: "/people/alice",
			Status: 404, Bytes: 0},
	}}
}

func TestCSVDecoderMatchesBatchReader(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := weblog.WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	batch, err := weblog.ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, NewCSVDecoder(bytes.NewReader(buf.Bytes())))
	if !reflect.DeepEqual(batch.Records, streamed) {
		t.Fatalf("stream CSV decode diverged from batch:\nbatch: %+v\nstream: %+v", batch.Records, streamed)
	}
}

func TestCSVDecoderRaggedRows(t *testing.T) {
	// Rows missing trailing columns must decode like the batch reader:
	// absent cells become zero values.
	raw := "useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer,bot_name,bot_category\n" +
		"ua1,2025-03-01T00:00:00Z,h1,AS1,www,/robots.txt,200,10,,BotA,CatA\n" +
		"ua2,2025-03-01T00:00:30Z,h2,AS2,www,/x\n" + // ragged: no status onwards
		"ua3,2025-03-01T00:01:00Z,h3,AS3\n" // ragged: no site/path either
	batch, err := weblog.ReadCSV(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, NewCSVDecoder(strings.NewReader(raw)))
	if !reflect.DeepEqual(batch.Records, streamed) {
		t.Fatalf("ragged-row decode diverged:\nbatch: %+v\nstream: %+v", batch.Records, streamed)
	}
	if len(streamed) != 3 {
		t.Fatalf("want 3 records, got %d", len(streamed))
	}
	if streamed[1].Status != 0 || streamed[1].Path != "/x" {
		t.Fatalf("ragged row decoded wrong: %+v", streamed[1])
	}
}

func TestJSONLDecoderMatchesBatchReader(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := weblog.WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	batch, err := weblog.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, NewJSONLDecoder(bytes.NewReader(buf.Bytes())))
	if !reflect.DeepEqual(batch.Records, streamed) {
		t.Fatalf("stream JSONL decode diverged from batch")
	}
}

func TestCLFDecoderMatchesBatchReader(t *testing.T) {
	clf := `1.2.3.4 - - [01/Mar/2025:12:00:00 +0000] "GET /robots.txt HTTP/1.1" 200 123 "-" "Googlebot/2.1"
not a log line
5.6.7.8 - - [01/Mar/2025:12:00:31 +0000] "GET /page HTTP/1.1" 200 456 "https://r/" "curl/8.0"
`
	opts := weblog.CLFOptions{Site: "www", ASNFor: func(h string) string { return "AS-" + h }}
	batch, skipped, err := weblog.ReadCLF(strings.NewReader(clf), opts)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewCLFDecoder(strings.NewReader(clf), opts)
	streamed := drain(t, dec)
	if !reflect.DeepEqual(batch.Records, streamed) {
		t.Fatalf("stream CLF decode diverged from batch:\nbatch: %+v\nstream: %+v", batch.Records, streamed)
	}
	if dec.Skipped != skipped || dec.Skipped != 1 {
		t.Fatalf("skipped: batch %d, stream %d, want 1", skipped, dec.Skipped)
	}
}

func TestCLFDecoderStrict(t *testing.T) {
	dec := NewCLFDecoder(strings.NewReader("garbage\n"), weblog.CLFOptions{Strict: true})
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Fatalf("want decode error, got %v", err)
	}
}

func TestNewDecoderUnknownFormat(t *testing.T) {
	if _, err := NewDecoder("xml", strings.NewReader(""), weblog.CLFOptions{}); err == nil {
		t.Fatal("want error for unknown format")
	}
}

func TestDatasetDecoder(t *testing.T) {
	d := sampleDataset()
	streamed := drain(t, NewDatasetDecoder(d))
	if !reflect.DeepEqual(d.Records, streamed) {
		t.Fatal("dataset replay diverged")
	}
}

func TestPipelineShardCountInvariance(t *testing.T) {
	d := makeSynthetic(5000, 1, 0)
	var want *Aggregates
	for _, shards := range []int{1, 2, 4, 7} {
		p := NewPipeline(Options{Shards: shards})
		res, err := p.Run(context.Background(), NewDatasetDecoder(d))
		if err != nil {
			t.Fatal(err)
		}
		if res.Shards != shards {
			t.Fatalf("snapshot reports %d shards, want %d", res.Shards, shards)
		}
		got := res.Compliance()
		if got == nil {
			t.Fatal("default pipeline must run the compliance analyzer")
		}
		if want == nil {
			want = got
			continue
		}
		assertSameAggregates(t, want, got, fmt.Sprintf("shards=%d", shards))
	}
}

func TestPipelineOutOfOrderWithinSkew(t *testing.T) {
	ordered := makeSynthetic(5000, 2, 0)
	shuffled := makeSynthetic(5000, 2, 30*time.Second) // same records, jittered times

	// Sort the jittered dataset to produce the "what a batch sort would
	// see" ground truth, then stream the UNSORTED version with a skew
	// window covering the jitter.
	sorted := &weblog.Dataset{Records: append([]weblog.Record(nil), shuffled.Records...)}
	sorted.SortByTime()

	want, err := NewPipeline(Options{Shards: 3}).Run(context.Background(), NewDatasetDecoder(sorted))
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPipeline(Options{Shards: 3, MaxSkew: 2 * time.Minute}).Run(context.Background(), NewDatasetDecoder(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	assertSameAggregates(t, want.Compliance(), got.Compliance(), "out-of-order vs sorted")

	// Sanity: the ordered and jittered datasets genuinely differ in order.
	if reflect.DeepEqual(ordered.Records, shuffled.Records) {
		t.Fatal("test fixture produced no disorder")
	}
}

func TestPipelineKeepAndDroppedCount(t *testing.T) {
	d := sampleDataset()
	p := NewPipeline(Options{Shards: 2, Keep: func(r *weblog.Record) bool {
		return r.BotName != "" // drop the anonymous curl record
	}})
	res, err := p.Run(context.Background(), NewDatasetDecoder(d))
	if err != nil {
		t.Fatal(err)
	}
	if p.DroppedRecords() != 1 {
		t.Fatalf("dropped = %d, want 1", p.DroppedRecords())
	}
	if res.Records != 2 {
		t.Fatalf("records = %d, want 2", res.Records)
	}
}

func TestPipelineContextCancelKeepsPartialAggregates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPipeline(Options{Shards: 2})
	res, err := p.Run(ctx, NewDatasetDecoder(makeSynthetic(100, 3, 0)))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Compliance() == nil {
		t.Fatal("want non-nil results on cancellation")
	}
}

func TestLiveSnapshotMidRun(t *testing.T) {
	p := NewPipeline(Options{Shards: 2})
	d := makeSynthetic(2000, 4, 0)
	for i := range d.Records {
		if err := p.Ingest(nil, d.Records[i]); err != nil {
			t.Fatal(err)
		}
		if i == len(d.Records)/2 {
			if snap := p.Snapshot(); snap.Records > uint64(i+1) {
				t.Fatalf("live snapshot saw %d records, only %d ingested", snap.Records, i+1)
			}
		}
	}
	p.Close()
	if snap := p.Snapshot(); snap.Records != uint64(len(d.Records)) {
		t.Fatalf("final snapshot records = %d, want %d", snap.Records, len(d.Records))
	}
}

func TestTailReaderFollowsGrowth(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu chunkedReader
	mu.chunks = [][]byte{[]byte("hello\nwor"), nil, []byte("ld\npartial")}
	tr := NewTailReader(ctx, &mu, time.Millisecond)

	buf := make([]byte, 32)
	var got []byte
	for len(got) < len("hello\nworld\n") {
		n, err := tr.Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "hello\nworld\n" {
		t.Fatalf("got %q", got)
	}

	// After cancellation the held-back final line ("partial", no newline)
	// is flushed so its record is not lost, and only then does the reader
	// report a clean EOF.
	cancel()
	n, err := tr.Read(buf)
	if err != nil || string(buf[:n]) != "partial" {
		t.Fatalf("want flushed final line %q, got %q err=%v", "partial", buf[:n], err)
	}
	if n, err := tr.Read(buf); err != io.EOF || n != 0 {
		t.Fatalf("want clean io.EOF after flush, got n=%d err=%v", n, err)
	}
}

// TestTailReaderFlushWithoutPartial cancels a tail with no held-back
// bytes: the very first read after cancellation is the clean EOF.
func TestTailReaderFlushWithoutPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cr chunkedReader
	cr.chunks = [][]byte{[]byte("done\n")}
	tr := NewTailReader(ctx, &cr, time.Millisecond)

	got, err := func() ([]byte, error) {
		buf := make([]byte, 16)
		n, err := tr.Read(buf)
		return buf[:n], err
	}()
	if err != nil || string(got) != "done\n" {
		t.Fatalf("first read = %q, %v", got, err)
	}
	cancel()
	buf := make([]byte, 16)
	if n, err := tr.Read(buf); err != io.EOF || n != 0 {
		t.Fatalf("want immediate io.EOF, got n=%d err=%v", n, err)
	}
}

// TestTailReaderSteadyStateAllocs pins the chunk loop's allocation
// behavior: once warmed, following a steadily growing stream through a
// TailReader allocates nothing per Read — the line buffer is compacted and
// reused across chunks, never reallocated.
func TestTailReaderSteadyStateAllocs(t *testing.T) {
	src := &endlessLines{line: []byte(`h0001 - - [01/Mar/2025:00:00:00 +0000] "GET /x HTTP/1.1" 200 5` + "\n")}
	tr := NewTailReader(context.Background(), src, time.Millisecond)
	buf := make([]byte, 4096)
	for i := 0; i < 64; i++ { // warm until the buffer reaches steady state
		if _, err := tr.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := tr.Read(buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state tail Read allocates %.2f allocs/op, want 0", avg)
	}
}

// endlessLines yields the same newline-terminated line forever, never
// reporting EOF (a file growing faster than the tail consumes it).
type endlessLines struct{ line []byte }

func (e *endlessLines) Read(p []byte) (int, error) {
	return copy(p, e.line), nil
}

// chunkedReader yields its chunks one Read at a time, reporting EOF
// between them (simulating a file that grows between polls).
type chunkedReader struct {
	chunks [][]byte
	i      int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if c.i >= len(c.chunks) {
		return 0, io.EOF
	}
	chunk := c.chunks[c.i]
	c.i++
	if chunk == nil {
		return 0, io.EOF
	}
	n := copy(p, chunk)
	return n, nil
}

// assertSameAggregates compares every exported aggregate map.
func assertSameAggregates(t *testing.T, want, got *Aggregates, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.CrawlDelay, got.CrawlDelay) {
		t.Fatalf("%s: CrawlDelay diverged\nwant %v\ngot  %v", label, want.CrawlDelay, got.CrawlDelay)
	}
	if !reflect.DeepEqual(want.Endpoint, got.Endpoint) {
		t.Fatalf("%s: Endpoint diverged", label)
	}
	if !reflect.DeepEqual(want.Disallow, got.Disallow) {
		t.Fatalf("%s: Disallow diverged", label)
	}
	if !reflect.DeepEqual(want.Access, got.Access) {
		t.Fatalf("%s: Access diverged", label)
	}
	if !reflect.DeepEqual(want.Checked, got.Checked) {
		t.Fatalf("%s: Checked diverged", label)
	}
	if !reflect.DeepEqual(want.Categories, got.Categories) {
		t.Fatalf("%s: Categories diverged\nwant %v\ngot  %v", label, want.Categories, got.Categories)
	}
	if want.Records != got.Records {
		t.Fatalf("%s: Records %d != %d", label, want.Records, got.Records)
	}
	if want.Tuples != got.Tuples {
		t.Fatalf("%s: Tuples %d != %d", label, want.Tuples, got.Tuples)
	}
}
