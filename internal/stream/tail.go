package stream

import (
	"bytes"
	"context"
	"io"
	"time"
)

// TailReader adapts a growing log file (or any reader that can temporarily
// run out of data) into a blocking stream: where the underlying reader
// reports io.EOF, TailReader polls until new bytes appear or the context
// is done, at which point it reports a clean io.EOF of its own. Wrapping a
// log file in a TailReader turns any Decoder into a follower, `tail -f`
// style:
//
//	f, _ := os.Open(path)
//	dec := stream.NewCSVDecoder(stream.NewTailReader(ctx, f, time.Second))
//
// TailReader is line-framed: it only releases bytes up to the last
// newline it has seen, holding any trailing partial line back until its
// newline arrives. That way a record the writer was mid-way through
// appending when the context was cancelled is dropped — never handed to a
// decoder as a truncated row — so a follow session always ends cleanly
// with exactly the records that were fully written. (Consequently a final
// line with no trailing newline is never emitted; log appenders
// universally newline-terminate.)
type TailReader struct {
	ctx     context.Context
	r       io.Reader
	poll    time.Duration
	scratch []byte
	ready   []byte // complete-line bytes not yet returned
	partial []byte // bytes after the last newline, held back
	done    bool
}

// NewTailReader wraps r. poll is the sleep between EOF probes; zero means
// 500ms.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *TailReader {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &TailReader{ctx: ctx, r: r, poll: poll, scratch: make([]byte, 32*1024)}
}

// Read returns buffered complete-line bytes, refilling from the
// underlying reader as needed; at its io.EOF it sleeps and retries until
// data arrives or the context is done. Context cancellation surfaces as
// io.EOF, discarding any held-back partial line.
func (t *TailReader) Read(p []byte) (int, error) {
	for {
		if len(t.ready) > 0 {
			n := copy(p, t.ready)
			t.ready = t.ready[n:]
			return n, nil
		}
		if t.done {
			return 0, io.EOF
		}
		n, err := t.r.Read(t.scratch)
		if n > 0 {
			t.partial = append(t.partial, t.scratch[:n]...)
			if i := bytes.LastIndexByte(t.partial, '\n'); i >= 0 {
				t.ready = t.partial[:i+1]
				// Fresh backing array: appends to partial must not
				// clobber the ready bytes they used to share.
				t.partial = append([]byte(nil), t.partial[i+1:]...)
			}
			continue
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// EOF (or empty read): wait for growth or cancellation.
		select {
		case <-t.ctx.Done():
			t.done = true // drop any partial line
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}
