package stream

import (
	"bytes"
	"context"
	"io"
	"time"
)

// TailReader adapts a growing log file (or any reader that can temporarily
// run out of data) into a blocking stream: where the underlying reader
// reports io.EOF, TailReader polls until new bytes appear or the context
// is done, at which point it reports a clean io.EOF of its own. Wrapping a
// log file in a TailReader turns any Decoder into a follower, `tail -f`
// style:
//
//	f, _ := os.Open(path)
//	dec := stream.NewCSVDecoder(stream.NewTailReader(ctx, f, time.Second))
//
// TailReader is line-framed: it only releases bytes up to the last
// newline it has seen, holding any trailing partial line back until its
// newline arrives. That way a decoder never sees a row that is still
// being appended mid-read. When the follow session ends (context
// cancellation) at the underlying reader's EOF — the usual case, since a
// tail spends its life parked there — the held-back final line is
// flushed before the clean io.EOF, so a log whose last line lacks a
// trailing newline still yields its final record instead of silently
// dropping it. The flush cannot prove the line was complete: a writer
// paused mid-append at cancel time hands the decoder a truncated row
// (the CSV/CLF decoders tolerate or skip such rows; see the DESIGN.md
// known-limits note). That is the accepted cost of never losing the
// final record of a finished log. If cancellation instead catches the
// reader with file bytes still flowing, it stops promptly after the
// current chunk's complete lines — the remaining unread bytes and the
// partial tail (whose continuation may be among them) are abandoned, as
// an interrupt demands; a caller preferring completeness over prompt
// shutdown can delay cancellation until its decoder goes idle.
//
// Because cancellation surfaces as a clean EOF, a pipeline can run off
// the decoder alone (Pipeline.Run with a nil context) and still shut
// down promptly on cancel — that is how cmd/analyze's follow mode
// guarantees the flushed final record is actually consumed.
// TailReader holds one reused buffer segmented by three cursors:
// buf[rpos:line] is ready (complete-line bytes not yet returned),
// buf[line:wpos] is the held-back partial line, and buf[wpos:] is free
// space for the next underlying read. Consumed bytes are reclaimed by
// compaction (a copy to the front) instead of reallocation, so a
// steady-state tail session allocates nothing per chunk — the buffer grows
// only when a single line outgrows it.
type TailReader struct {
	ctx  context.Context
	r    io.Reader
	poll time.Duration
	buf  []byte
	rpos int // start of unreturned ready bytes
	line int // end of complete-line bytes (start of the partial tail)
	wpos int // end of buffered data
	done bool
}

// tailBufSize is the TailReader's initial buffer; it doubles whenever a
// single line exceeds the free space.
const tailBufSize = 64 * 1024

// NewTailReader wraps r. poll is the sleep between EOF probes; zero means
// 500ms.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) *TailReader {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &TailReader{ctx: ctx, r: r, poll: poll, buf: make([]byte, tailBufSize)}
}

// Read returns buffered complete-line bytes, refilling from the
// underlying reader as needed; at its io.EOF it sleeps and retries until
// data arrives or the context is done. Context cancellation flushes any
// held-back final unterminated line, then surfaces as a clean io.EOF.
func (t *TailReader) Read(p []byte) (int, error) {
	for {
		if t.rpos < t.line {
			n := copy(p, t.buf[t.rpos:t.line])
			t.rpos += n
			return n, nil
		}
		if t.done {
			return 0, io.EOF
		}
		// No ready bytes: reclaim the consumed prefix, keeping only the
		// held-back partial line, then grow if a long line has filled the
		// buffer anyway.
		if t.rpos > 0 {
			t.wpos = copy(t.buf, t.buf[t.rpos:t.wpos])
			t.rpos, t.line = 0, 0
		}
		if t.wpos == len(t.buf) {
			grown := make([]byte, 2*len(t.buf))
			copy(grown, t.buf[:t.wpos])
			t.buf = grown
		}
		n, err := t.r.Read(t.buf[t.wpos:])
		if n > 0 {
			start := t.wpos
			t.wpos += n
			if i := bytes.LastIndexByte(t.buf[start:t.wpos], '\n'); i >= 0 {
				t.line = start + i + 1
			}
			// Cancellation with data still flowing: stop after the
			// complete lines of this chunk. The held-back partial is NOT
			// flushed here — the file may hold its continuation, so
			// emitting it could truncate a row; only the true-EOF branch
			// below knows the partial is genuinely the final line.
			if t.ctx.Err() != nil {
				t.done = true
				t.wpos = t.line
			}
			continue
		}
		if err != nil && err != io.EOF {
			return 0, err
		}
		// EOF (or empty read): wait for growth or cancellation.
		select {
		case <-t.ctx.Done():
			t.done = true
			// Flush the final unterminated line, if any; the next Read
			// returns the clean EOF.
			t.line = t.wpos
			continue
		case <-time.After(t.poll):
		}
	}
}
