// Package streamtest holds the shared synthetic-dataset builders the
// streaming parity suites use: a fixed bot cast with deterministic
// enrichment, record generators at several traffic shapes, and the
// batch-side ground-truth helpers they are compared against. It is a
// plain library over internal/weblog and internal/compliance —
// deliberately free of internal/stream imports, so both package
// stream's white-box tests and internal/core's black-box suites (crash
// injection, merge equivalence) can share one source of fixtures
// without an import cycle.
package streamtest

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/compliance"
	"repro/internal/weblog"
)

// Bot is one synthetic user agent with the standardized name/category
// the enrichment step would assign it. Anonymous and scanner agents
// have empty names; scanners are dropped by the preprocessor in both
// the batch and streaming paths.
type Bot struct {
	UA, Name, Cat string
}

// BotPool is the fixed cast of the synthetic stream.
var BotPool = []Bot{
	{"Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)", "Googlebot", "Search Engine Crawlers"},
	{"Mozilla/5.0 AppleWebKit/537.36 (compatible; bingbot/2.0)", "Bingbot", "Search Engine Crawlers"},
	{"Mozilla/5.0 (compatible; GPTBot/1.2; +https://openai.com/gptbot)", "GPTBot", "AI Data Scrapers"},
	{"Mozilla/5.0 (compatible; ClaudeBot/1.0)", "ClaudeBot", "AI Data Scrapers"},
	{"Mozilla/5.0 (compatible; AhrefsBot/7.0; +http://ahrefs.com/robot/)", "AhrefsBot", "SEO Crawlers"},
	{"Mozilla/5.0 (compatible; SemrushBot/7~bl)", "SemrushBot", "SEO Crawlers"},
	{"facebookexternalhit/1.1", "FacebookBot", "Social Media Crawlers"},
	{"python-requests/2.31.0", "", ""},
	{"Mozilla/5.0 (Windows NT 10.0) Chrome/120.0 Safari/537.36", "", ""},
	{"Mozilla/5.0 nuclei/3.0 scanner", "", ""}, // dropped by scanner filter
}

// ASNPool is the network cast; index i is bot i's dominant network in
// the bursty shape.
var ASNPool = []string{"GOOGLE", "MICROSOFT-CORP", "AMAZON-02", "OPENAI", "COMCAST", "OVH", "HETZNER"}

// PathPool is the URL cast, mixing robots.txt fetches, JSON endpoints,
// and page paths so every compliance metric sees traffic.
var PathPool = []string{
	"/robots.txt", "/page-data/app.json", "/page-data/page/index.json",
	"/people/alice", "/dining/menu", "/", "/news/2025/03", "/robots.txt?x=1",
}

// PoolEnrich returns an enrichment func implementing the BotPool
// mapping via O(1) lookup; it is deterministic, concurrency-safe, and —
// because BOTH the batch and streaming paths use it — keeps parity
// tests about the pipelines rather than matcher performance.
func PoolEnrich() func(*weblog.Record) {
	byUA := make(map[string]struct{ name, cat string }, len(BotPool))
	for _, b := range BotPool {
		byUA[b.UA] = struct{ name, cat string }{b.Name, b.Cat}
	}
	return func(r *weblog.Record) {
		e := byUA[r.UserAgent]
		r.BotName = e.name
		r.Category = e.cat
	}
}

// MakeSynthetic builds n records across a few thousand τ tuples with
// whole-second timestamps (so CSV's RFC 3339 round-trip is lossless).
// jitter > 0 displaces each record's timestamp by up to ±jitter while
// keeping slice order, producing bounded out-of-order input.
func MakeSynthetic(n int, seed int64, jitter time.Duration) *weblog.Dataset {
	rng := rand.New(rand.NewSource(seed))
	enrich := PoolEnrich()
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	nTuples := n / 50
	if nTuples < 8 {
		nTuples = 8
	}
	type tupleID struct {
		ua, ip, asn string
	}
	tuples := make([]tupleID, nTuples)
	for i := range tuples {
		b := BotPool[rng.Intn(len(BotPool))]
		tuples[i] = tupleID{
			ua:  b.UA,
			ip:  fmt.Sprintf("h%05x", rng.Intn(1<<20)),
			asn: ASNPool[rng.Intn(len(ASNPool))],
		}
	}
	d := &weblog.Dataset{Records: make([]weblog.Record, 0, n)}
	jitterSec := int(jitter / time.Second)
	for i := 0; i < n; i++ {
		tp := tuples[rng.Intn(nTuples)]
		ts := base.Add(time.Duration(i) * time.Second)
		if jitterSec > 0 {
			ts = ts.Add(time.Duration(rng.Intn(2*jitterSec+1)-jitterSec) * time.Second)
		}
		rec := weblog.Record{
			UserAgent: tp.ua,
			Time:      ts,
			IPHash:    tp.ip,
			ASN:       tp.asn,
			Site:      "www",
			Path:      PathPool[rng.Intn(len(PathPool))],
			Status:    200,
			Bytes:     int64(rng.Intn(50_000)),
		}
		// Pre-enrich so fixtures also serve pipelines with no Enrich hook.
		enrich(&rec)
		d.Records = append(d.Records, rec)
	}
	return d
}

// MakeBursty builds n records as per-tuple bursts separated by idle
// gaps, over a multi-week span: bursts produce multi-access sessions
// (in-burst steps stay under the 5-minute gap), the long span exercises
// every §5.1 re-check window, and each bot's traffic is dominated by
// one ASN with a small fraction leaking from foreign networks so the
// §5.2 heuristic fires. jitter > 0 displaces timestamps by up to
// ±jitter while keeping slice order, producing bounded out-of-order
// input.
func MakeBursty(n int, seed int64, jitter time.Duration) *weblog.Dataset {
	rng := rand.New(rand.NewSource(seed))
	enrich := PoolEnrich()
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	nTuples := n / 400
	if nTuples < 8 {
		nTuples = 8
	}
	type tupleID struct {
		ua, ip, asn string
	}
	// A guaranteed §5.2 case at any n: BotPool[0] gets 19 tuples on its
	// dominant network and exactly one on a foreign one, keeping the
	// foreign share safely under the 10% suspect threshold while making
	// at least one finding certain.
	tuples := make([]tupleID, 0, nTuples+20)
	for i := 0; i < 19; i++ {
		tuples = append(tuples, tupleID{ua: BotPool[0].UA, ip: fmt.Sprintf("gdom%02d", i), asn: ASNPool[0]})
	}
	tuples = append(tuples, tupleID{ua: BotPool[0].UA, ip: "gspoof", asn: ASNPool[1]})
	for i := 0; i < nTuples; i++ {
		bi := rng.Intn(len(BotPool))
		asn := ASNPool[bi%len(ASNPool)] // the bot's dominant network
		if rng.Intn(20) == 0 {          // ~5% of tuples spoof from elsewhere
			asn = ASNPool[rng.Intn(len(ASNPool))]
		}
		tuples = append(tuples, tupleID{
			ua:  BotPool[bi].UA,
			ip:  fmt.Sprintf("h%05x", rng.Intn(1<<20)),
			asn: asn,
		})
	}
	nTuples = len(tuples)
	d := &weblog.Dataset{Records: make([]weblog.Record, 0, n)}
	jitterSec := int(jitter / time.Second)
	now := base
	for len(d.Records) < n {
		tp := tuples[rng.Intn(nTuples)]
		burst := 1 + rng.Intn(12)
		for b := 0; b < burst && len(d.Records) < n; b++ {
			now = now.Add(time.Duration(1+rng.Intn(45)) * time.Second)
			ts := now
			if jitterSec > 0 {
				ts = ts.Add(time.Duration(rng.Intn(2*jitterSec+1)-jitterSec) * time.Second)
			}
			rec := weblog.Record{
				UserAgent: tp.ua,
				Time:      ts,
				IPHash:    tp.ip,
				ASN:       tp.asn,
				Site:      "www",
				Path:      PathPool[rng.Intn(len(PathPool))],
				Status:    200,
				Bytes:     int64(rng.Intn(50_000)),
			}
			enrich(&rec)
			d.Records = append(d.Records, rec)
		}
		now = now.Add(time.Duration(rng.Intn(1200)) * time.Second)
	}
	return d
}

// EnrichBatch applies the default preprocessing + pool enrichment —
// the batch side of every parity comparison.
func EnrichBatch(d *weblog.Dataset) *weblog.Dataset {
	pre := weblog.NewPreprocessor()
	enrich := PoolEnrich()
	pre.Enrich = func(r *weblog.Record) { enrich(r) }
	return pre.Run(d)
}

// BatchSummaries runs the full batch path: preprocess + enrich, then
// the compliance package's per-directive summaries.
func BatchSummaries(d *weblog.Dataset, cfg compliance.Config) map[compliance.Directive]compliance.Summary {
	enriched := EnrichBatch(d)
	out := make(map[compliance.Directive]compliance.Summary)
	for _, dir := range compliance.Directives {
		out[dir] = compliance.Summarize(enriched, dir, cfg)
	}
	return out
}

// EncodeCSV round-trips a dataset through the CSV wire format,
// returning the exact bytes a log file would hold.
func EncodeCSV(d *weblog.Dataset) ([]byte, error) {
	var buf bytes.Buffer
	if err := weblog.WriteCSV(&buf, d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PartitionByTuple splits a dataset into n disjoint datasets by hashing
// each record's τ = (ASN, IPHash, UserAgent) tuple, preserving record
// order within every part. Tuple-disjointness is the precondition of
// the cross-process checkpoint merge: every part holds complete
// per-tuple traffic, the way per-site worker splits do.
func PartitionByTuple(d *weblog.Dataset, n int) []*weblog.Dataset {
	parts := make([]*weblog.Dataset, n)
	for i := range parts {
		parts[i] = &weblog.Dataset{}
	}
	for _, rec := range d.Records {
		h := fnv.New32a()
		h.Write([]byte(rec.ASN))
		h.Write([]byte{0})
		h.Write([]byte(rec.IPHash))
		h.Write([]byte{0})
		h.Write([]byte(rec.UserAgent))
		p := parts[int(h.Sum32())%n]
		p.Records = append(p.Records, rec)
	}
	return parts
}
