// Package synth generates the study's web-log dataset from the calibrated
// bot population. It substitutes for the paper's access to 3.9 million real
// web requests against 36 university sites (the "log-access hurdle"): each
// bot profile emits a renewal process of page accesses whose pacing, path
// selection, robots.txt fetches, ASN mix, and reaction to the deployed
// robots.txt version follow the behavioural parameters published in the
// paper's tables. The analysis pipeline is a pure function of the log
// fields, so recovering the paper's results from this synthetic dataset
// exercises exactly the code paths the real dataset would.
//
// Two products are generated:
//
//   - FullDataset: the 40-day, all-sites observational dataset behind
//     Tables 2-3 and Figures 2-4, 10 and the spoofing analysis.
//   - StudyDataset(v): one two-week deployment phase of the §4 controlled
//     experiment on the high-traffic study site, for v in {base,v1,v2,v3}.
//
// All randomness flows from Config.Seed; generation is deterministic.
package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/botnet"
	"repro/internal/robots"
	"repro/internal/sitegen"
	"repro/internal/weblog"
)

// Config parameterizes a Generator.
type Config struct {
	// Seed drives all randomness. Two generators with equal configs
	// produce byte-identical datasets.
	Seed int64
	// Days is the observational window length (the paper's is 40).
	Days int
	// Start is the first instant of the window (paper: 2025-02-12).
	Start time.Time
	// Scale multiplies all traffic volumes; 1.0 reproduces paper-scale
	// traffic, smaller values produce proportionally smaller datasets with
	// the same statistical shape. Zero defaults to 1.0.
	Scale float64
	// Sites is the simulated estate; nil generates the default 36 sites
	// from Seed.
	Sites []sitegen.Site
	// Population is the bot population; nil uses botnet.DefaultPopulation.
	Population *botnet.Population
	// AnonymousVisitors is the number of generic (non-bot) browser
	// visitors in the full dataset, before scaling.
	AnonymousVisitors int
	// Secret keys the IP anonymizer.
	Secret []byte
}

// DefaultStart mirrors the paper's collection start date.
var DefaultStart = time.Date(2025, 2, 12, 0, 0, 0, 0, time.UTC)

// PhaseDays is the length of one robots.txt deployment phase (two weeks).
const PhaseDays = 14

// Generator produces synthetic datasets. Construct with New.
type Generator struct {
	cfg   Config
	sites []sitegen.Site
	pop   *botnet.Population
	anon  *weblog.Anonymizer
}

// New validates the config and builds a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Days <= 0 {
		cfg.Days = 40
	}
	if cfg.Start.IsZero() {
		cfg.Start = DefaultStart
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("synth: negative scale %v", cfg.Scale)
	}
	if cfg.AnonymousVisitors == 0 {
		// Sized so anonymous browser traffic is comparable to known-bot
		// traffic, mirroring the paper's dataset where known bots are
		// ~42% of page visits and ~5% of unique IPs (Table 2).
		cfg.AnonymousVisitors = 100000
	}
	g := &Generator{cfg: cfg}
	if cfg.Sites == nil {
		g.sites = sitegen.Generate(cfg.Seed)
	} else {
		g.sites = cfg.Sites
	}
	if cfg.Population == nil {
		pop, err := botnet.DefaultPopulation()
		if err != nil {
			return nil, err
		}
		g.pop = pop
	} else {
		g.pop = cfg.Population
	}
	g.anon = weblog.NewAnonymizer(cfg.Secret)
	return g, nil
}

// Sites exposes the generated estate.
func (g *Generator) Sites() []sitegen.Site { return g.sites }

// Population exposes the bot population.
func (g *Generator) Population() *botnet.Population { return g.pop }

// botSeed derives a stable per-bot seed independent of iteration order.
func (g *Generator) botSeed(name string, salt int64) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= int64(name[i])
		h *= 1099511628211
	}
	return h ^ g.cfg.Seed ^ salt
}

// FullDataset synthesizes the 40-day all-sites observational dataset.
func (g *Generator) FullDataset() *weblog.Dataset {
	d := &weblog.Dataset{}
	for _, p := range g.pop.Profiles {
		g.emitBotFull(d, p)
	}
	g.emitAnonymous(d)
	d.SortByTime()
	return d
}

// StudyDataset synthesizes one two-week phase of the §4 controlled
// experiment on the study site under the given robots.txt version. The
// phase clock starts at Config.Start regardless of version so phases are
// comparable; the paper's baseline phase was likewise collected separately
// (January) and compared against later phases.
func (g *Generator) StudyDataset(v robots.Version) *weblog.Dataset {
	d := &weblog.Dataset{}
	study := sitegen.StudySite(g.sites)
	for _, p := range g.pop.Profiles {
		g.emitBotPhase(d, p, study, v)
	}
	g.emitAnonymousOnSite(d, study, PhaseDays, int64(1000+int(v)))
	d.SortByTime()
	return d
}

// AllStudyPhases generates all four phases keyed by version.
func (g *Generator) AllStudyPhases() map[robots.Version]*weblog.Dataset {
	out := make(map[robots.Version]*weblog.Dataset, len(robots.Versions))
	for _, v := range robots.Versions {
		out[v] = g.StudyDataset(v)
	}
	return out
}

// tupleIdentity is one (IP, ASN) identity of a bot, possibly spoofed.
type tupleIdentity struct {
	ipHash  string
	asnName string
	spoofed bool
}

// effIPs scales a bot's IP-identity count with the traffic scale so the
// per-tuple access volume — which the crawl-delay metric's gap statistics
// depend on — stays constant across scales. (At a small scale with the
// full IP count, most tuples would see a single access, which the paper's
// metric counts as trivially compliant, washing out the calibration.)
func (g *Generator) effIPs(p *botnet.Profile) int {
	n := int(float64(p.NumIPs)*g.cfg.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// identities materializes a bot's source identities: the scale-adjusted
// legitimate IPs on the main ASN plus one spoofed IP per spoof ASN.
func (g *Generator) identities(p *botnet.Profile) []tupleIdentity {
	n := g.effIPs(p)
	out := make([]tupleIdentity, 0, n+len(p.SpoofASNs))
	for i := 0; i < n; i++ {
		ip := fmt.Sprintf("legit-%s-%d", p.Bot.Name, i)
		out = append(out, tupleIdentity{ipHash: g.anon.HashIP(ip), asnName: p.MainASN})
	}
	for i, asnName := range p.SpoofASNs {
		ip := fmt.Sprintf("spoof-%s-%d", p.Bot.Name, i)
		out = append(out, tupleIdentity{ipHash: g.anon.HashIP(ip), asnName: asnName, spoofed: true})
	}
	return out
}

// accessKind classifies one generated access.
type accessKind int

const (
	kindPage accessKind = iota
	kindPageData
	kindRobots
)

// behaviour captures the per-phase generation parameters resolved from a
// profile: the probability an inter-access gap honours the 30-s delay, the
// probability an access is "compliant" path-wise, and the probability an
// access fetches robots.txt.
type behaviour struct {
	gapCompliance   float64
	pageDataProb    float64
	robotsProb      float64
	checksRobots    bool
	peoplePreferred bool
	// scheduledRecheck enables the RecheckInterval-driven robots.txt poll
	// at burst starts. The observational dataset replaces it with
	// emitRobotsPolls; the controlled study phases disable it so the
	// disallow/endpoint ratios stay pinned to the calibrated per-access
	// probabilities.
	scheduledRecheck bool
}

// resolve computes the behaviour of a (possibly spoofed) bot instance
// under a robots.txt version.
func resolve(p *botnet.Profile, v robots.Version, spoofed bool) behaviour {
	b := behaviour{
		gapCompliance: p.BaselineDelayCompliance,
		pageDataProb:  p.PageDataAffinity,
		robotsProb:    p.RobotsFetchFraction,
		checksRobots:  p.ChecksDuring(v),
	}
	b.peoplePreferred = strings.Contains(strings.ToLower(p.Bot.Name), "yisou")
	if spoofed && !spoofReactsLikeReal(p.Bot.Name, v) {
		// Spoofed instances ignore directives (Figure 11): keep baseline
		// pacing, never fetch robots.txt, never adapt paths.
		b.robotsProb = 0
		b.checksRobots = false
		return b
	}
	exempt := p.IsExempt()
	switch v {
	case robots.VersionBase:
		// Baseline behaviour as initialized.
	case robots.Version1:
		b.gapCompliance = p.DelayCompliance
	case robots.Version2:
		if !exempt {
			b.pageDataProb = p.EndpointCompliance
		}
	case robots.Version3:
		if !exempt {
			b.robotsProb = p.DisallowCompliance
		}
	}
	if !b.checksRobots && v == robots.Version3 && !exempt {
		// A bot that does not fetch robots.txt cannot register disallow
		// compliance: the metric is robots fetches / total accesses.
		b.robotsProb = 0
	}
	return b
}

// spoofReactsLikeReal marks the two Figure 11 exceptions: spoofed
// PerplexityBot (endpoint experiment) and Bytespider (disallow experiment)
// shifted like the true bots, suggesting misidentification by the
// heuristic.
func spoofReactsLikeReal(name string, v robots.Version) bool {
	switch {
	case name == "PerplexityBot" && v == robots.Version2:
		return true
	case name == "Bytespider" && v == robots.Version3:
		return true
	}
	return false
}

// emitBotPhase generates one bot's traffic for a 14-day study phase.
func (g *Generator) emitBotPhase(d *weblog.Dataset, p *botnet.Profile, study *sitegen.Site, v robots.Version) {
	rng := rand.New(rand.NewSource(g.botSeed(p.Bot.Name, int64(100+int(v)))))
	ids := g.identities(p)
	hitsPerTuplePerDay := p.DailyHits * g.cfg.Scale / float64(g.effIPs(p))
	for _, id := range ids {
		perDay := hitsPerTuplePerDay
		if id.spoofed {
			// Spoofed traffic volume: SpoofRate of the bot's total, split
			// across spoof identities.
			perDay = p.DailyHits * g.cfg.Scale * p.SpoofRate / float64(len(p.SpoofASNs))
		}
		g.emitTuplePhase(d, p, study, resolve(p, v, id.spoofed), rng, id, perDay, PhaseDays, g.cfg.Start)
	}
}

// emitTuplePhase generates one identity's accesses over a phase.
//
// A tuple's traffic is emitted as chronological bursts rather than a thin
// daily trickle: real crawler instances work in crawl bursts, and the
// paper's crawl-delay metric is dominated by within-burst gaps. (A purely
// daily schedule would make every gap day-scale and thus trivially
// "compliant", destroying the calibration for fast bots like
// HeadlessChrome.) Cross-burst gaps are large and count as compliant,
// diluting the within-burst rate by ~(#bursts-1)/(#gaps); burst sizes of
// 15-45 keep that dilution in the noise.
func (g *Generator) emitTuplePhase(d *weblog.Dataset, p *botnet.Profile, site *sitegen.Site,
	b behaviour, rng *rand.Rand, id tupleIdentity, perDay float64, days int, start time.Time) {

	total := poissonish(rng, perDay*float64(days))
	if total == 0 {
		return
	}

	// Pre-draw burst start days (sorted) so the tuple's clock is monotone
	// and the robots.txt re-check schedule (Figure 10) stays meaningful.
	var bursts []int
	remaining := total
	for remaining > 0 {
		size := 15 + rng.Intn(31)
		if size > remaining {
			size = remaining
		}
		bursts = append(bursts, size)
		remaining -= size
	}
	burstDays := make([]int, len(bursts))
	for i := range burstDays {
		burstDays[i] = rng.Intn(days)
	}
	sort.Ints(burstDays)

	var lastRobots time.Time
	var prevEnd time.Time
	// A bot that consults robots.txt during this phase but has no ongoing
	// robots-fetch behaviour (zero per-access probability, no scheduled
	// polls) still fetches the file once when it first arrives — this is
	// what makes a Table 7 "Checked: Yes" observable for such bots.
	oneTimeCheck := b.checksRobots && b.robotsProb == 0 && !b.scheduledRecheck
	for bi, size := range bursts {
		dayStart := start.Add(time.Duration(burstDays[bi]) * 24 * time.Hour)
		at := dayStart.Add(time.Duration(rng.Float64() * 12 * float64(time.Hour)))
		if at.Before(prevEnd) {
			// Keep the tuple's timeline monotone when two bursts land on
			// the same day.
			at = prevEnd.Add(time.Duration(60+rng.Intn(600)) * time.Second)
		}

		// Scheduled robots.txt re-check at burst start (Figure 10
		// cadence), independent of per-access robots fetch probability.
		if b.scheduledRecheck && b.checksRobots && p.RecheckInterval > 0 &&
			(lastRobots.IsZero() || at.Sub(lastRobots) >= p.RecheckInterval) {
			d.Records = append(d.Records, g.record(p, site, id, at, kindRobots, rng))
			lastRobots = at
			at = at.Add(time.Duration(1+rng.Intn(5)) * time.Second)
		}
		if oneTimeCheck && bi == 0 {
			d.Records = append(d.Records, g.record(p, site, id, at, kindRobots, rng))
			lastRobots = at
			at = at.Add(time.Duration(1+rng.Intn(5)) * time.Second)
		}

		for i := 0; i < size; i++ {
			kind := kindPage
			switch {
			case b.checksRobots && rng.Float64() < b.robotsProb:
				kind = kindRobots
				lastRobots = at
			case rng.Float64() < b.pageDataProb:
				kind = kindPageData
			}
			d.Records = append(d.Records, g.record(p, site, id, at, kind, rng))
			at = at.Add(g.gap(rng, b.gapCompliance))
		}
		prevEnd = at
	}
}

// gap draws one inter-access delay honouring the 30-s threshold with the
// given probability: compliant gaps are 30-150 s, violations 1-29 s.
func (g *Generator) gap(rng *rand.Rand, compliance float64) time.Duration {
	if rng.Float64() < compliance {
		return time.Duration(30+rng.ExpFloat64()*40) * time.Second
	}
	return time.Duration(1+rng.Intn(29)) * time.Second
}

// record materializes one access record.
func (g *Generator) record(p *botnet.Profile, site *sitegen.Site, id tupleIdentity,
	at time.Time, kind accessKind, rng *rand.Rand) weblog.Record {

	rec := weblog.Record{
		UserAgent: p.Bot.UASample,
		Time:      at,
		IPHash:    id.ipHash,
		ASN:       id.asnName,
		Site:      site.Name,
		Status:    200,
		BotName:   p.Bot.Name,
		Category:  p.Bot.Category.String(),
	}
	switch kind {
	case kindRobots:
		rec.Path = "/robots.txt"
		rec.Bytes = 120 + rng.Int63n(80)
	case kindPageData:
		paths := site.PageDataPaths()
		pg := paths[rng.Intn(len(paths))]
		rec.Path = pg
		if page, ok := site.Lookup(pg); ok {
			rec.Bytes = page.Size
		} else {
			rec.Bytes = 512
		}
	default:
		rec.Path = g.pickPagePath(site, rng, strings.Contains(strings.ToLower(p.Bot.Name), "yisou"))
		rec.Bytes = jitterBytes(rng, p.BytesPerHit)
		if rng.Float64() < 0.015 {
			rec.Status = 404
			rec.Bytes = 512
		}
	}
	return rec
}

// pickPagePath selects a crawlable page; YisouSpider-style bots prefer the
// people directory (the paper found "the vast majority of YisouSpider's
// accesses were to our institution's people directory").
func (g *Generator) pickPagePath(site *sitegen.Site, rng *rand.Rand, preferPeople bool) string {
	paths := site.CrawlablePaths()
	if preferPeople && rng.Float64() < 0.8 {
		// Binary-search the sorted path list for the /people/ span.
		lo := sort.SearchStrings(paths, "/people/")
		hi := sort.SearchStrings(paths, "/people/\xff")
		if hi > lo {
			return paths[lo+rng.Intn(hi-lo)]
		}
	}
	return paths[rng.Intn(len(paths))]
}

// jitterBytes spreads response sizes around the profile mean.
func jitterBytes(rng *rand.Rand, mean int64) int64 {
	if mean <= 1 {
		return 1
	}
	f := 0.5 + rng.Float64() // 0.5x .. 1.5x
	v := int64(float64(mean) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// poissonish draws an integer with the given mean: the integer part plus a
// Bernoulli fractional remainder, with mild day-to-day variation. It avoids
// a full Poisson sampler while keeping long-run totals calibrated.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	varied := mean * (0.7 + 0.6*rng.Float64())
	n := int(varied)
	if rng.Float64() < varied-float64(n) {
		n++
	}
	return n
}

// emitBotFull generates a bot's 40-day traffic across the estate: most on
// the study site, the remainder spread over the other sites (including the
// three passive-restricted ones §5.1 analyzes).
//
// In the observational dataset, robots.txt fetches are driven purely by
// each bot's re-check schedule (emitRobotsPolls) rather than the per-access
// probability used in the controlled study phases — the §5.1 analysis
// measures cadence, and random per-access fetches would drown it.
func (g *Generator) emitBotFull(d *weblog.Dataset, p *botnet.Profile) {
	rng := rand.New(rand.NewSource(g.botSeed(p.Bot.Name, 7)))
	ids := g.identities(p)
	study := sitegen.StudySite(g.sites)
	hitsPerTuplePerDay := p.DailyHits * g.cfg.Scale / float64(g.effIPs(p))

	for _, id := range ids {
		perDay := hitsPerTuplePerDay
		if id.spoofed {
			perDay = p.DailyHits * g.cfg.Scale * p.SpoofRate / float64(len(p.SpoofASNs))
		}
		b := resolve(p, robots.VersionBase, id.spoofed)
		b.robotsProb = 0
		b.checksRobots = false // scheduled polls replace burst-start checks
		// 60% of volume on the study site, 40% across three secondary
		// sites chosen per identity (bots do not crawl all 36 sites).
		g.emitTuplePhase(d, p, study, b, rng, id, perDay*0.6, g.cfg.Days, g.cfg.Start)
		for k := 0; k < 3; k++ {
			site := &g.sites[1+rng.Intn(len(g.sites)-1)]
			g.emitTuplePhase(d, p, site, b, rng, id, perDay*0.4/3, g.cfg.Days, g.cfg.Start)
		}
	}
	g.emitRobotsPolls(d, p, rng)
}

// emitRobotsPolls emits a bot's scheduled robots.txt re-checks over the
// observational window: one fetch per RecheckInterval (with ±10% jitter)
// on the study site and on each passive-restricted site, from the bot's
// first legitimate identity. Bots that never check robots.txt emit
// nothing, and bots whose interval exceeds the window check only once —
// both behaviours the paper observes (§5.1, Table 7).
func (g *Generator) emitRobotsPolls(d *weblog.Dataset, p *botnet.Profile, rng *rand.Rand) {
	if !p.ChecksDuring(robots.VersionBase) || p.RecheckInterval <= 0 {
		return
	}
	id := tupleIdentity{
		ipHash:  g.anon.HashIP(fmt.Sprintf("legit-%s-0", p.Bot.Name)),
		asnName: p.MainASN,
	}
	end := g.cfg.Start.Add(time.Duration(g.cfg.Days) * 24 * time.Hour)
	targets := []*sitegen.Site{sitegen.StudySite(g.sites)}
	for _, s := range sitegen.PassiveRestrictedSites(g.sites) {
		targets = append(targets, s)
	}
	for _, site := range targets {
		at := g.cfg.Start.Add(time.Duration(rng.Float64() * float64(time.Hour)))
		for at.Before(end) {
			d.Records = append(d.Records, g.record(p, site, id, at, kindRobots, rng))
			jitter := 0.9 + 0.2*rng.Float64()
			at = at.Add(time.Duration(float64(p.RecheckInterval) * jitter))
		}
	}
}

// browserUAs is the anonymous-visitor UA pool.
var browserUAs = []string{
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/121.0 Safari/537.36",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 14_2) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.2 Safari/605.1.15",
	"Mozilla/5.0 (X11; Linux x86_64; rv:122.0) Gecko/20100101 Firefox/122.0",
	"Mozilla/5.0 (iPhone; CPU iPhone OS 17_2 like Mac OS X) AppleWebKit/605.1.15 (KHTML, like Gecko) Mobile/15E148",
	"Mozilla/5.0 (Linux; Android 14; Pixel 8) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/121.0 Mobile Safari/537.36",
	"Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:121.0) Gecko/20100101 Firefox/121.0",
	"Mozilla/5.0 (Macintosh; Intel Mac OS X 13_6) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120.0 Safari/537.36",
	"Mozilla/5.0 (Windows NT 11.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Edge/120.0 Safari/537.36",
}

// anonASNs spreads anonymous visitors over eyeball networks.
var anonASNs = []string{
	"COMCAST-7922", "UUNET", "ATT-INTERNET4", "CHARTER-20115",
	"CENTURYLINK-US-LEGACY-QWEST", "DTAG", "BT-UK-AS", "OCN",
	"IPG-AS-AP", "BHARTI-MOBILITY-AS-AP",
}

// emitAnonymous generates the non-bot browser background for the full
// window across all sites.
func (g *Generator) emitAnonymous(d *weblog.Dataset) {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ 0x5eed))
	n := int(float64(g.cfg.AnonymousVisitors) * g.cfg.Scale)
	for i := 0; i < n; i++ {
		site := &g.sites[rng.Intn(len(g.sites))]
		g.emitOneVisitor(d, site, rng, i, g.cfg.Days, g.cfg.Start)
	}
}

// emitAnonymousOnSite adds browser background to one site for a phase.
func (g *Generator) emitAnonymousOnSite(d *weblog.Dataset, site *sitegen.Site, days int, salt int64) {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ salt))
	n := int(float64(g.cfg.AnonymousVisitors) * g.cfg.Scale / 4)
	for i := 0; i < n; i++ {
		g.emitOneVisitor(d, site, rng, i, days, g.cfg.Start)
	}
}

// emitOneVisitor generates one human-like visit: a handful of pages in one
// short session on one day.
func (g *Generator) emitOneVisitor(d *weblog.Dataset, site *sitegen.Site, rng *rand.Rand, idx, days int, start time.Time) {
	ua := browserUAs[rng.Intn(len(browserUAs))]
	// Real browser populations carry thousands of distinct UA builds; vary
	// a minor build token so unique-UA counts (Table 2) scale with traffic.
	if rng.Float64() < 0.6 {
		ua = fmt.Sprintf("%s Build/%d.%d.%d", ua, 1+rng.Intn(9), rng.Intn(20), rng.Intn(400))
	}
	asnName := anonASNs[rng.Intn(len(anonASNs))]
	ip := g.anon.HashIP(fmt.Sprintf("anon-%d-%d", idx, rng.Intn(1<<30)))
	day := rng.Intn(days)
	at := start.Add(time.Duration(day)*24*time.Hour + time.Duration(rng.Float64()*20*float64(time.Hour)))
	paths := site.CrawlablePaths()
	visits := 1 + rng.Intn(6)
	referer := ""
	for v := 0; v < visits; v++ {
		path := paths[rng.Intn(len(paths))]
		page, _ := site.Lookup(path)
		rec := weblog.Record{
			UserAgent: ua, Time: at, IPHash: ip, ASN: asnName,
			Site: site.Name, Path: path, Status: 200, Bytes: page.Size,
			Referer: referer,
		}
		if rng.Float64() < 0.02 {
			rec.Status = 404
			rec.Path = "/404"
			rec.Bytes = 512
		}
		d.Records = append(d.Records, rec)
		referer = site.Name + path
		at = at.Add(time.Duration(5+rng.Intn(120)) * time.Second)
	}
}
