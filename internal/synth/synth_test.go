package synth

import (
	"math"
	"testing"
	"time"

	"repro/internal/robots"
	"repro/internal/weblog"
)

func gen(t *testing.T, scale float64) *Generator {
	t.Helper()
	g, err := New(Config{Seed: 1, Scale: scale, Secret: []byte("test")})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewDefaults(t *testing.T) {
	g := gen(t, 0.05)
	if len(g.Sites()) != 36 {
		t.Errorf("sites = %d", len(g.Sites()))
	}
	if g.Population().Len() < 80 {
		t.Errorf("population = %d", g.Population().Len())
	}
}

func TestNewRejectsNegativeScale(t *testing.T) {
	if _, err := New(Config{Scale: -1}); err == nil {
		t.Error("negative scale must error")
	}
}

func TestDeterminism(t *testing.T) {
	g1 := gen(t, 0.02)
	g2 := gen(t, 0.02)
	d1 := g1.StudyDataset(robots.Version1)
	d2 := g2.StudyDataset(robots.Version1)
	if d1.Len() != d2.Len() {
		t.Fatalf("lengths differ: %d vs %d", d1.Len(), d2.Len())
	}
	for i := range d1.Records {
		if d1.Records[i] != d2.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	g1, _ := New(Config{Seed: 1, Scale: 0.02, Secret: []byte("t")})
	g2, _ := New(Config{Seed: 2, Scale: 0.02, Secret: []byte("t")})
	d1 := g1.StudyDataset(robots.VersionBase)
	d2 := g2.StudyDataset(robots.VersionBase)
	if d1.Len() == d2.Len() {
		same := true
		for i := range d1.Records {
			if d1.Records[i] != d2.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical datasets")
		}
	}
}

func TestScaleProportionality(t *testing.T) {
	small := gen(t, 0.02).StudyDataset(robots.VersionBase)
	big := gen(t, 0.08).StudyDataset(robots.VersionBase)
	ratio := float64(big.Len()) / float64(small.Len())
	if ratio < 2.0 || ratio > 8.0 {
		t.Errorf("4x scale produced %.1fx records (small=%d big=%d)", ratio, small.Len(), big.Len())
	}
}

func TestRecordsSortedAndWellFormed(t *testing.T) {
	d := gen(t, 0.03).StudyDataset(robots.Version2)
	if d.Len() == 0 {
		t.Fatal("empty dataset")
	}
	for i := range d.Records {
		r := &d.Records[i]
		if i > 0 && r.Time.Before(d.Records[i-1].Time) {
			t.Fatal("records not time-sorted")
		}
		if r.UserAgent == "" || r.IPHash == "" || r.ASN == "" || r.Site == "" || r.Path == "" {
			t.Fatalf("record %d incomplete: %+v", i, r)
		}
		if r.Bytes <= 0 {
			t.Fatalf("record %d has no bytes: %+v", i, r)
		}
		if r.Status != 200 && r.Status != 404 {
			t.Fatalf("record %d unexpected status %d", i, r.Status)
		}
	}
}

// complianceOf computes the fraction of a bot's inter-access gaps >= 30 s
// on its legitimate tuples, the paper's crawl-delay metric.
func complianceOf(d *weblog.Dataset, bot string) (ratio float64, gaps int) {
	byTuple := make(map[weblog.Tuple][]time.Time)
	for i := range d.Records {
		r := &d.Records[i]
		if r.BotName != bot {
			continue
		}
		tu := weblog.TupleOf(r)
		byTuple[tu] = append(byTuple[tu], r.Time)
	}
	var ok, total int
	for _, times := range byTuple {
		for i := 1; i < len(times); i++ {
			delta := times[i].Sub(times[i-1])
			if delta >= 30*time.Second {
				ok++
			}
			total++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(ok) / float64(total), total
}

func TestCrawlDelayComplianceCalibrated(t *testing.T) {
	// Under v1, high-volume bots' measured gap compliance should land
	// near their Table 6 calibration (within sampling noise).
	g := gen(t, 0.5)
	d := g.StudyDataset(robots.Version1)
	cases := []struct {
		bot  string
		want float64
	}{
		{"YisouSpider", 0.38},
		{"Applebot", 0.841},
		{"Googlebot", 0.65},
		{"HeadlessChrome", 0.036},
	}
	for _, c := range cases {
		got, n := complianceOf(d, c.bot)
		if n < 50 {
			t.Errorf("%s has only %d gaps; volume calibration off", c.bot, n)
			continue
		}
		if math.Abs(got-c.want) > 0.08 {
			t.Errorf("%s v1 gap compliance = %.3f (n=%d), want ~%.3f", c.bot, got, n, c.want)
		}
	}
}

func TestDisallowPhaseRobotsOnlyForCompliant(t *testing.T) {
	g := gen(t, 0.5)
	d := g.StudyDataset(robots.Version3)
	// GPTBot has disallow compliance 1.0: essentially all accesses from
	// legitimate tuples should be robots.txt fetches.
	var robotsN, total int
	for i := range d.Records {
		r := &d.Records[i]
		if r.BotName != "GPTBot" || r.ASN != "MICROSOFT-CORP-MSN-AS-BLOCK" {
			continue
		}
		total++
		if r.IsRobotsFetch() {
			robotsN++
		}
	}
	if total == 0 {
		t.Fatal("no GPTBot records in v3 phase")
	}
	if frac := float64(robotsN) / float64(total); frac < 0.95 {
		t.Errorf("GPTBot v3 robots fraction = %.3f, want ~1.0", frac)
	}
}

func TestExemptBotUnaffectedByV3(t *testing.T) {
	g := gen(t, 0.4)
	d := g.StudyDataset(robots.Version3)
	// Googlebot is exempt: it should still fetch regular pages under v3.
	var pages int
	for i := range d.Records {
		r := &d.Records[i]
		if r.BotName == "Googlebot" && !r.IsRobotsFetch() {
			pages++
		}
	}
	if pages < 50 {
		t.Errorf("exempt Googlebot fetched only %d pages under v3", pages)
	}
}

func TestTable7NonCheckersFetchNoRobots(t *testing.T) {
	g := gen(t, 0.4)
	for _, v := range []robots.Version{robots.Version1, robots.Version2, robots.Version3} {
		d := g.StudyDataset(v)
		for i := range d.Records {
			r := &d.Records[i]
			if r.BotName == "Axios" && r.IsRobotsFetch() {
				t.Errorf("Axios fetched robots.txt under %v; Table 7 says it never checks", v)
			}
		}
	}
}

func TestBytespiderChecksOnlyPerTable7(t *testing.T) {
	g := gen(t, 0.6)
	checks := func(v robots.Version) bool {
		d := g.StudyDataset(v)
		for i := range d.Records {
			r := &d.Records[i]
			if r.BotName == "Bytespider" && r.ASN == "BYTEDANCE" && r.IsRobotsFetch() {
				return true
			}
		}
		return false
	}
	if checks(robots.Version2) {
		t.Error("Bytespider must not check robots.txt during the endpoint phase")
	}
	if !checks(robots.Version1) {
		t.Error("Bytespider should check robots.txt during the crawl-delay phase")
	}
}

func TestSpoofedIdentitiesPresent(t *testing.T) {
	g := gen(t, 1.0)
	d := g.StudyDataset(robots.VersionBase)
	// Baiduspider has a 2.5% spoof rate across 6 ASNs; its UA should
	// appear from at least one non-dominant ASN.
	asns := make(map[string]int)
	for i := range d.Records {
		r := &d.Records[i]
		if r.BotName == "Baiduspider" {
			asns[r.ASN]++
		}
	}
	if len(asns) < 2 {
		t.Errorf("Baiduspider appears from %d ASNs, want spoofed extras: %v", len(asns), asns)
	}
	dominant := asns["CHINA169-BACKBONE"]
	var rest int
	for a, n := range asns {
		if a != "CHINA169-BACKBONE" {
			rest += n
		}
	}
	if dominant == 0 || rest == 0 {
		t.Fatalf("asns = %v", asns)
	}
	if frac := float64(dominant) / float64(dominant+rest); frac < 0.90 {
		t.Errorf("dominant ASN fraction = %.3f, want >= 0.90 per the spoof heuristic", frac)
	}
}

func TestFullDatasetCoversSitesAndAnonymous(t *testing.T) {
	g := gen(t, 0.02)
	d := g.FullDataset()
	sites := make(map[string]struct{})
	var anon int
	for i := range d.Records {
		sites[d.Records[i].Site] = struct{}{}
		if d.Records[i].BotName == "" {
			anon++
		}
	}
	if len(sites) < 10 {
		t.Errorf("full dataset touches only %d sites", len(sites))
	}
	if anon == 0 {
		t.Error("full dataset has no anonymous browser traffic")
	}
	first, last, _ := d.TimeRange()
	if last.Sub(first) < 30*24*time.Hour {
		t.Errorf("window %v too short for a 40-day dataset", last.Sub(first))
	}
}

func TestYisouPrefersPeopleDirectory(t *testing.T) {
	g := gen(t, 0.1)
	d := g.FullDataset()
	var people, total int
	for i := range d.Records {
		r := &d.Records[i]
		if r.BotName != "YisouSpider" || r.Site != "www" || r.IsRobotsFetch() {
			continue
		}
		total++
		if len(r.Path) > 8 && r.Path[:8] == "/people/" {
			people++
		}
	}
	if total == 0 {
		t.Fatal("no YisouSpider study-site records")
	}
	if frac := float64(people) / float64(total); frac < 0.5 {
		t.Errorf("YisouSpider people-directory fraction = %.3f, want > 0.5", frac)
	}
}

func TestAllStudyPhases(t *testing.T) {
	g := gen(t, 0.02)
	phases := g.AllStudyPhases()
	if len(phases) != 4 {
		t.Fatalf("phases = %d", len(phases))
	}
	for v, d := range phases {
		if d.Len() == 0 {
			t.Errorf("phase %v empty", v)
		}
	}
}
