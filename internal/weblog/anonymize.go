package weblog

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"net"
	"strings"
)

// Anonymizer one-way hashes visitor IP addresses for IRB-style privacy
// compliance (§3.1: "a one-way cryptographic hash of the web visitor's IP
// address"). It uses HMAC-SHA-256 with a per-deployment secret so hashes
// cannot be reversed by brute-forcing the small IPv4 space, then truncates
// to 16 hex characters, which keeps collision probability negligible at
// dataset scale while keeping logs compact.
type Anonymizer struct {
	mac []byte // HMAC key
}

// NewAnonymizer builds an anonymizer with the given secret key. An empty
// secret is permitted (useful for reproducible test fixtures) but defeats
// the brute-force protection, so production callers should supply one.
func NewAnonymizer(secret []byte) *Anonymizer {
	k := make([]byte, len(secret))
	copy(k, secret)
	return &Anonymizer{mac: k}
}

// HashIP returns the anonymized form of an IP address. Invalid addresses
// are hashed as raw strings so malformed log lines still anonymize
// deterministically rather than leaking.
func (a *Anonymizer) HashIP(ip string) string {
	canonical := ip
	if parsed := net.ParseIP(strings.TrimSpace(ip)); parsed != nil {
		canonical = parsed.String()
	}
	h := hmac.New(sha256.New, a.mac)
	h.Write([]byte(canonical))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// AnonymizeRecord replaces a raw IP in IPHash with its hash. Records whose
// IPHash already looks hashed (16 lower-case hex chars) pass through
// untouched, making the pipeline idempotent.
func (a *Anonymizer) AnonymizeRecord(r *Record) {
	if looksHashed(r.IPHash) {
		return
	}
	r.IPHash = a.HashIP(r.IPHash)
}

// AnonymizeDataset anonymizes every record in place.
func (a *Anonymizer) AnonymizeDataset(d *Dataset) {
	for i := range d.Records {
		a.AnonymizeRecord(&d.Records[i])
	}
}

func looksHashed(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}
