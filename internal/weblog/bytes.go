// bytes.go holds the []byte-native variants of the row primitives: the
// same parse semantics as the string forms in io.go and clf.go, but
// operating directly on decoder-owned byte slices with no intermediate
// string conversion and all high-repetition columns routed through a
// scoped Intern table. The streaming decoders in internal/stream are the
// intended callers; the batch readers keep the string forms, which makes
// them the reference implementation the differential fuzz tests compare
// against.
//
// The timestamp and integer fields use strict fast paths that accept
// exactly the canonical wire forms (what WriteCSV/WriteCLF emit) and fall
// back to the standard library parsers on anything unusual, so the
// accepted input set — and every parsed value — is identical to the string
// path by construction.
package weblog

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"time"
)

// ParseCSVHeaderBytes builds a schema from a byte-slice header row, the
// []byte-native form of ParseCSVHeader. Column names are copied, so the
// row may be decoder-owned scratch.
func ParseCSVHeaderBytes(header [][]byte) CSVSchema {
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[string(h)] = i
	}
	return CSVSchema{col: col}
}

// getBytes returns the named column of row, or nil when the column is
// absent or the row is ragged — the []byte twin of get.
func (s CSVSchema) getBytes(row [][]byte, name string) []byte {
	if i, ok := s.col[name]; ok && i < len(row) {
		return row[i]
	}
	return nil
}

// DecodeRowBytes decodes one data row of byte-slice cells under this
// schema, the []byte-native form of DecodeRow: identical field semantics
// (ragged rows tolerated, missing cells zero-valued), no per-field string
// conversion, high-repetition columns interned through in (nil in means
// plain copies). The returned Record never aliases row's backing memory.
func (s CSVSchema) DecodeRowBytes(row [][]byte, in *Intern) (Record, error) {
	var rec Record
	rec.UserAgent = in.Bytes(s.getBytes(row, "useragent"))
	if ts := s.getBytes(row, "timestamp"); len(ts) > 0 {
		t, err := ParseTimestampBytes(ts)
		if err != nil {
			return rec, fmt.Errorf("bad timestamp %q: %w", ts, err)
		}
		rec.Time = t
	}
	rec.IPHash = in.Bytes(s.getBytes(row, "ip_hash"))
	rec.ASN = in.Bytes(s.getBytes(row, "asn"))
	rec.Site = in.Bytes(s.getBytes(row, "sitename"))
	rec.Path = in.Bytes(s.getBytes(row, "uri_path"))
	if v := s.getBytes(row, "status"); len(v) > 0 {
		n, err := atoiBytes(v)
		if err != nil {
			return rec, fmt.Errorf("bad status %q: %w", v, err)
		}
		rec.Status = n
	}
	if v := s.getBytes(row, "bytes"); len(v) > 0 {
		n, err := parseInt64Bytes(v)
		if err != nil {
			return rec, fmt.Errorf("bad bytes %q: %w", v, err)
		}
		rec.Bytes = n
	}
	rec.Referer = in.Bytes(s.getBytes(row, "referer"))
	rec.BotName = in.Bytes(s.getBytes(row, "bot_name"))
	rec.Category = in.Bytes(s.getBytes(row, "bot_category"))
	return rec, nil
}

// ParseJSONLLineBytes decodes one JSONL line like ParseJSONLLine and then
// routes the high-repetition columns through in, so records decoded from a
// long stream share canonical string storage. Output is identical to
// ParseJSONLLine on every input (the JSON framing is delegated to
// encoding/json; only the string storage differs).
func ParseJSONLLineBytes(b []byte, in *Intern) (Record, error) {
	rec, err := ParseJSONLLine(b)
	if err != nil {
		return rec, err
	}
	rec.UserAgent = in.String(rec.UserAgent)
	rec.IPHash = in.String(rec.IPHash)
	rec.ASN = in.String(rec.ASN)
	rec.Site = in.String(rec.Site)
	rec.Path = in.String(rec.Path)
	rec.Referer = in.String(rec.Referer)
	rec.BotName = in.String(rec.BotName)
	rec.Category = in.String(rec.Category)
	return rec, nil
}

// ParseTimestampBytes parses an RFC 3339 timestamp from a byte slice with
// the exact semantics of time.Parse(time.RFC3339, string(b)): a strict
// zero-allocation fast path accepts the canonical "2006-01-02T15:04:05Z"
// form WriteCSV emits, and everything else — offsets, fractional seconds,
// lenient layout variants — falls back to time.Parse itself, so both
// acceptance and parsed values match the string path on every input.
func ParseTimestampBytes(b []byte) (time.Time, error) {
	if t, ok := fastRFC3339UTC(b); ok {
		return t, nil
	}
	return time.Parse(time.RFC3339, string(b))
}

// fastRFC3339UTC is the strict fast path: exactly "YYYY-MM-DDTHH:MM:SSZ",
// with the same field validation the standard library's internal
// parseRFC3339 applies (so acceptance implies time.Parse acceptance with
// an identical value — the 'Z' branch never consults the local zone).
func fastRFC3339UTC(s []byte) (time.Time, bool) {
	if len(s) != len("2006-01-02T15:04:05Z") || s[len(s)-1] != 'Z' {
		return time.Time{}, false
	}
	if s[4] != '-' || s[7] != '-' || s[10] != 'T' || s[13] != ':' || s[16] != ':' {
		return time.Time{}, false
	}
	year, ok := num4(s[0:4])
	if !ok {
		return time.Time{}, false
	}
	month, ok := numRange(s[5:7], 1, 12)
	if !ok {
		return time.Time{}, false
	}
	day, ok := numRange(s[8:10], 1, daysIn(time.Month(month), year))
	if !ok {
		return time.Time{}, false
	}
	hour, ok := numRange(s[11:13], 0, 23)
	if !ok {
		return time.Time{}, false
	}
	min, ok := numRange(s[14:16], 0, 59)
	if !ok {
		return time.Time{}, false
	}
	sec, ok := numRange(s[17:19], 0, 59)
	if !ok {
		return time.Time{}, false
	}
	return time.Date(year, time.Month(month), day, hour, min, sec, 0, time.UTC), true
}

// num2 parses exactly two ASCII digits.
func num2(s []byte) (int, bool) {
	if s[0] < '0' || s[0] > '9' || s[1] < '0' || s[1] > '9' {
		return 0, false
	}
	return int(s[0]-'0')*10 + int(s[1]-'0'), true
}

// num4 parses exactly four ASCII digits.
func num4(s []byte) (int, bool) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// numRange parses exactly two ASCII digits and range-checks the value.
func numRange(s []byte, min, max int) (int, bool) {
	n, ok := num2(s)
	if !ok || n < min || n > max {
		return 0, false
	}
	return n, true
}

// daysIn mirrors the standard library's month-length rule, February leap
// years included.
func daysIn(m time.Month, year int) int {
	switch m {
	case time.January, time.March, time.May, time.July, time.August, time.October, time.December:
		return 31
	case time.February:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	default:
		return 30
	}
}

// atoiBytes mirrors strconv.Atoi on a byte slice: a digits-only fast path
// for values that cannot overflow, with strconv.Atoi (one transient string)
// as the fallback for signs, overflow, and malformed input.
func atoiBytes(v []byte) (int, error) {
	if n, ok := digitsFast(v, 9); ok {
		return int(n), nil
	}
	return strconv.Atoi(string(v))
}

// parseInt64Bytes mirrors strconv.ParseInt(v, 10, 64) the same way.
func parseInt64Bytes(v []byte) (int64, error) {
	if n, ok := digitsFast(v, 18); ok {
		return n, nil
	}
	return strconv.ParseInt(string(v), 10, 64)
}

// digitsFast parses an unsigned all-digit slice of at most maxDigits bytes
// (chosen so overflow is impossible: 18 digits < 2^63); anything else
// defers to strconv. Full 8-byte windows take one SWAR validate+parse step
// (see swar.go); only the sub-8 tail runs byte at a time. Acceptance is
// unchanged from the byte-at-a-time original: exactly the all-ASCII-digit
// slices of 1..maxDigits bytes, leading zeros included.
func digitsFast(v []byte, maxDigits int) (int64, bool) {
	if len(v) == 0 || len(v) > maxDigits {
		return 0, false
	}
	var n int64
	i := 0
	for ; i+8 <= len(v); i += 8 {
		chunk := binary.LittleEndian.Uint64(v[i:])
		if !allDigits8(chunk) {
			return 0, false
		}
		n = n*100_000_000 + int64(parse8Digits(chunk))
	}
	for ; i < len(v); i++ {
		c := v[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}
