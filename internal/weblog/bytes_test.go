package weblog

import (
	"reflect"

	"testing"
	"time"
)

func TestInternCanonicalizes(t *testing.T) {
	in := NewIntern()
	a := in.Bytes([]byte("Googlebot"))
	b := in.Bytes([]byte("Googlebot"))
	if a != "Googlebot" || b != "Googlebot" {
		t.Fatalf("interned values wrong: %q %q", a, b)
	}
	if in.Len() != 1 {
		t.Fatalf("table holds %d entries, want 1", in.Len())
	}
	if got := in.String("Googlebot"); got != "Googlebot" {
		t.Fatalf("String returned %q", got)
	}
	if in.Bytes(nil) != "" || in.String("") != "" {
		t.Fatal("empty values must intern to the empty string")
	}
}

func TestInternNeverAliasesInput(t *testing.T) {
	in := NewIntern()
	buf := []byte("mutable-value")
	s := in.Bytes(buf)
	for i := range buf {
		buf[i] = 'X'
	}
	if s != "mutable-value" {
		t.Fatalf("interned string changed with its input buffer: %q", s)
	}
	if again := in.Bytes([]byte("mutable-value")); again != "mutable-value" {
		t.Fatalf("canonical lookup broken after input reuse: %q", again)
	}
}

func TestInternCapStopsGrowth(t *testing.T) {
	in := NewInternSize(2)
	in.Bytes([]byte("a"))
	in.Bytes([]byte("b"))
	c := in.Bytes([]byte("c"))
	if c != "c" {
		t.Fatalf("over-cap value = %q", c)
	}
	if in.Len() != 2 {
		t.Fatalf("table grew past its cap: %d entries", in.Len())
	}
	// Existing entries still resolve.
	if in.Bytes([]byte("a")) != "a" {
		t.Fatal("pre-cap entry lost")
	}
}

func TestInternNilReceiver(t *testing.T) {
	var in *Intern
	if in.Bytes([]byte("x")) != "x" || in.String("y") != "y" || in.Len() != 0 {
		t.Fatal("nil *Intern must degrade to plain conversion")
	}
}

// TestDecodeRowBytesMatchesDecodeRow pins the two row decoders to each
// other over representative rows: full, ragged, malformed numerics, and
// malformed timestamps.
func TestDecodeRowBytesMatchesDecodeRow(t *testing.T) {
	header := []string{"useragent", "timestamp", "ip_hash", "asn", "sitename", "uri_path",
		"status", "bytes", "referer", "bot_name", "bot_category"}
	rows := [][]string{
		{"ua", "2025-03-01T12:00:00Z", "h1", "AS1", "www", "/robots.txt", "200", "123", "", "BotA", "CatA"},
		{"ua2", "2025-03-01T12:00:00+02:00", "h2", "AS2", "www", "/x", "404", "-5", "r", "", ""},
		{"ua3", "2025-03-01T12:00:00Z", "h3", "AS3"}, // ragged
		{"ua4", "not-a-time", "h4"},
		{"ua5", "2025-03-01T12:00:00Z", "h5", "AS5", "www", "/x", "xx"},
		{"ua6", "2025-03-01T12:00:00Z", "h6", "AS6", "www", "/x", "200", "huge"},
		{"ua7", "2025-02-30T12:00:00Z", "h7"}, // day out of range
	}
	schema := ParseCSVHeader(header)
	var bheader [][]byte
	for _, h := range header {
		bheader = append(bheader, []byte(h))
	}
	bschema := ParseCSVHeaderBytes(bheader)
	in := NewIntern()
	for i, row := range rows {
		want, werr := schema.DecodeRow(row)
		var brow [][]byte
		for _, c := range row {
			brow = append(brow, []byte(c))
		}
		got, gerr := bschema.DecodeRowBytes(brow, in)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("row %d: acceptance diverged: string err=%v, bytes err=%v", i, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("row %d diverged:\nstring: %+v\nbytes:  %+v", i, want, got)
		}
		// The decoded record must survive the caller scribbling the row.
		for _, c := range brow {
			for j := range c {
				c[j] = 0xFF
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("row %d: record aliases the row buffer", i)
		}
	}
}

// FuzzParseTimestampBytes differential-fuzzes the strict RFC 3339 fast
// path against time.Parse: identical acceptance, and identical Time values
// (deep-equal, so internal representation included) on acceptance.
func FuzzParseTimestampBytes(f *testing.F) {
	for _, s := range []string{
		"2025-03-01T00:00:00Z",
		"2024-02-29T00:00:00Z",       // leap day
		"2025-02-29T00:00:00Z",       // not a leap year
		"2025-03-01T00:00:00+02:00",  // offset: fallback path
		"2025-03-01T00:00:00.123Z",   // fraction: fallback path
		"2025-03-01T00:00:00z",       // lowercase z
		"2025-3-01T00:00:00Z",        // narrow month
		"9999-12-31T23:59:59Z",       //
		"0000-01-01T00:00:00Z",       //
		"2025-03-01T24:00:00Z",       // hour out of range
		"2025-03-01 00:00:00Z",       // space separator
		"2025-03-01T00:00:60Z",       // leap second is rejected
		"2025-03-01T00:00:00-00:00",  //
		"2025-03-01T00:00:00+23:59Z", // trailing junk
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, gerr := ParseTimestampBytes([]byte(s))
		want, werr := time.Parse(time.RFC3339, s)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("acceptance diverged on %q: time.Parse err=%v, bytes err=%v", s, werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("value diverged on %q: time.Parse %v, bytes %v", s, want, got)
		}
	})
}

// FuzzParseCLFTime differential-fuzzes the strict CLF timestamp fast path
// against time.Parse(clfTimeLayout, ...).UTC().
func FuzzParseCLFTime(f *testing.F) {
	for _, s := range []string{
		"12/Feb/2025:10:30:00 +0000",
		"12/Feb/2025:10:30:00 -0730",
		"12/feb/2025:10:30:00 +0000", // lowercase month: fallback accepts
		"2/Feb/2025:9:30:00 +0000",   // narrow fields: fallback accepts
		"30/Feb/2025:10:30:00 +0000", // day out of range
		"29/Feb/2024:23:59:59 +1400",
		"12/Feb/2025:10:30:00 +2500", // zone hour past the fast path's range
		"12/Feb/2025:10:30:00+0000",  // missing space
		"12/Feb/2025:10:30:00 0000",  // missing sign
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, gerr := parseCLFTime([]byte(s))
		want, werr := time.Parse(clfTimeLayout, s)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("acceptance diverged on %q: time.Parse err=%v, bytes err=%v", s, werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(want.UTC(), got) {
			t.Fatalf("value diverged on %q: time.Parse %v, bytes %v", s, want.UTC(), got)
		}
	})
}
