package weblog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements ingestion of NCSA Common/Combined Log Format lines —
// the export format of Apache httpd and nginx — so operators can run the
// study's analysis pipeline over their own server logs, which is exactly
// the position the paper's institution was in.
//
// Combined Log Format:
//
//	host ident authuser [dd/Mon/yyyy:HH:MM:SS zone] "METHOD path HTTP/v" status bytes "referer" "user-agent"
//
// The Common format is the same without the trailing referer/user-agent
// pair. Fields the study schema needs but CLF lacks (site name, ASN) are
// supplied by the caller via CLFOptions.

// CLFOptions configures CLF ingestion.
type CLFOptions struct {
	// Site is the sitename recorded on every parsed record (CLF carries
	// no virtual-host field; use one reader per vhost log).
	Site string
	// ASNFor maps the raw client host/IP to an AS handle; nil leaves ASN
	// empty (the asn package's Whois can enrich later).
	ASNFor func(host string) string
	// Anonymizer, if non-nil, hashes the client host immediately so raw
	// IPs never reach the dataset (the paper's IRB posture).
	Anonymizer *Anonymizer
	// Strict makes malformed lines an error; the default skips them and
	// counts them in the returned Skipped value.
	Strict bool
}

// clfTimeLayout is the CLF timestamp layout.
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// Decorate applies the per-record options (sitename, ASN lookup,
// anonymization) to a freshly parsed CLF record, in the order ReadCLF
// applies them. The streaming decoder in internal/stream uses the same
// method so both ingestion paths agree byte for byte.
func (o *CLFOptions) Decorate(rec *Record) {
	rec.Site = o.Site
	if o.ASNFor != nil {
		rec.ASN = o.ASNFor(rec.IPHash)
	}
	if o.Anonymizer != nil {
		o.Anonymizer.AnonymizeRecord(rec)
	}
}

// ReadCLF parses Common/Combined Log Format lines into a dataset. It
// returns the dataset, the number of skipped (malformed) lines, and the
// first error in Strict mode.
func ReadCLF(r io.Reader, opts CLFOptions) (*Dataset, int, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	skipped := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rec, err := ParseCLFLine(line)
		if err != nil {
			if opts.Strict {
				return nil, skipped, fmt.Errorf("weblog: CLF line %d: %w", lineNo, err)
			}
			skipped++
			continue
		}
		opts.Decorate(&rec)
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("weblog: scanning CLF: %w", err)
	}
	return d, skipped, nil
}

// ParseCLFLine parses one Common/Combined Log Format line. The client host
// lands in IPHash (raw; anonymize afterwards, e.g. via CLFOptions.Decorate).
func ParseCLFLine(line string) (Record, error) {
	var rec Record

	// host ident authuser
	host, rest, ok := cutSpace(line)
	if !ok {
		return rec, fmt.Errorf("missing host field")
	}
	if host == "" {
		// A leading space would otherwise shift every field left and let a
		// hostless line through (found by FuzzParseCLF).
		return rec, fmt.Errorf("empty host field")
	}
	rec.IPHash = host
	if _, rest, ok = cutSpace(rest); !ok { // ident
		return rec, fmt.Errorf("missing ident field")
	}
	if _, rest, ok = cutSpace(rest); !ok { // authuser
		return rec, fmt.Errorf("missing authuser field")
	}

	// [timestamp]
	if len(rest) == 0 || rest[0] != '[' {
		return rec, fmt.Errorf("missing '[' before timestamp")
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return rec, fmt.Errorf("unterminated timestamp")
	}
	ts, err := time.Parse(clfTimeLayout, rest[1:end])
	if err != nil {
		return rec, fmt.Errorf("bad timestamp: %w", err)
	}
	rec.Time = ts.UTC()
	rest = strings.TrimLeft(rest[end+1:], " ")

	// "METHOD path HTTP/v"
	reqLine, rest, err := quoted(rest)
	if err != nil {
		return rec, fmt.Errorf("request line: %w", err)
	}
	parts := strings.Split(reqLine, " ")
	if len(parts) >= 2 {
		rec.Path = parts[1]
	} else {
		rec.Path = reqLine
	}

	// status bytes — cutSpace returns the whole remainder as head when no
	// space follows, covering tokens at end of line.
	statusStr, rest, _ := cutSpace(strings.TrimLeft(rest, " "))
	if statusStr == "" {
		return rec, fmt.Errorf("missing status")
	}
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return rec, fmt.Errorf("bad status %q", statusStr)
	}
	rec.Status = status

	bytesStr, rest, _ := cutSpace(strings.TrimLeft(rest, " "))
	bytesStr = strings.TrimSpace(bytesStr)
	if bytesStr != "" && bytesStr != "-" {
		n, err := strconv.ParseInt(bytesStr, 10, 64)
		if err != nil {
			return rec, fmt.Errorf("bad bytes %q", bytesStr)
		}
		rec.Bytes = n
	}

	// Optional Combined extras: "referer" "user-agent".
	rest = strings.TrimLeft(rest, " ")
	if rest != "" {
		ref, rest2, err := quoted(rest)
		if err != nil {
			return rec, fmt.Errorf("referer: %w", err)
		}
		if ref != "-" {
			rec.Referer = ref
		}
		rest2 = strings.TrimLeft(rest2, " ")
		if rest2 != "" {
			ua, _, err := quoted(rest2)
			if err != nil {
				return rec, fmt.Errorf("user agent: %w", err)
			}
			if ua != "-" {
				rec.UserAgent = ua
			}
		}
	}
	return rec, nil
}

// cutSpace splits at the first space.
func cutSpace(s string) (head, rest string, ok bool) {
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// quoted parses a leading double-quoted field, handling backslash escapes
// the way httpd writes them (\" and \\).
func quoted(s string) (value, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '\\':
			if i+1 < len(s) {
				b.WriteByte(s[i+1])
				i += 2
				continue
			}
			return "", "", fmt.Errorf("dangling escape")
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// WriteCLF exports a dataset as Combined Log Format, the inverse of
// ReadCLF (site and ASN columns are dropped; hashes stand in for hosts).
func WriteCLF(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := range d.Records {
		r := &d.Records[i]
		ref := r.Referer
		if ref == "" {
			ref = "-"
		}
		ua := r.UserAgent
		if ua == "" {
			ua = "-"
		}
		_, err := fmt.Fprintf(bw, "%s - - [%s] \"GET %s HTTP/1.1\" %d %d %q %q\n",
			r.IPHash,
			r.Time.UTC().Format(clfTimeLayout),
			r.Path, r.Status, r.Bytes, ref, ua)
		if err != nil {
			return fmt.Errorf("weblog: writing CLF record %d: %w", i, err)
		}
	}
	return bw.Flush()
}
