package weblog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"
)

// This file implements ingestion of NCSA Common/Combined Log Format lines —
// the export format of Apache httpd and nginx — so operators can run the
// study's analysis pipeline over their own server logs, which is exactly
// the position the paper's institution was in.
//
// Combined Log Format:
//
//	host ident authuser [dd/Mon/yyyy:HH:MM:SS zone] "METHOD path HTTP/v" status bytes "referer" "user-agent"
//
// The Common format is the same without the trailing referer/user-agent
// pair. Fields the study schema needs but CLF lacks (site name, ASN) are
// supplied by the caller via CLFOptions.

// CLFOptions configures CLF ingestion.
type CLFOptions struct {
	// Site is the sitename recorded on every parsed record (CLF carries
	// no virtual-host field; use one reader per vhost log).
	Site string
	// ASNFor maps the raw client host/IP to an AS handle; nil leaves ASN
	// empty (the asn package's Whois can enrich later).
	ASNFor func(host string) string
	// Anonymizer, if non-nil, hashes the client host immediately so raw
	// IPs never reach the dataset (the paper's IRB posture).
	Anonymizer *Anonymizer
	// Strict makes malformed lines an error; the default skips them and
	// counts them in the returned Skipped value.
	Strict bool
}

// clfTimeLayout is the CLF timestamp layout.
const clfTimeLayout = "02/Jan/2006:15:04:05 -0700"

// Decorate applies the per-record options (sitename, ASN lookup,
// anonymization) to a freshly parsed CLF record, in the order ReadCLF
// applies them. The streaming decoder in internal/stream uses the same
// method so both ingestion paths agree byte for byte.
func (o *CLFOptions) Decorate(rec *Record) {
	rec.Site = o.Site
	if o.ASNFor != nil {
		rec.ASN = o.ASNFor(rec.IPHash)
	}
	if o.Anonymizer != nil {
		o.Anonymizer.AnonymizeRecord(rec)
	}
}

// ReadCLF parses Common/Combined Log Format lines into a dataset. It
// returns the dataset, the number of skipped (malformed) lines, and the
// first error in Strict mode.
func ReadCLF(r io.Reader, opts CLFOptions) (*Dataset, int, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	skipped := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := ParseCLFLineBytes(line, nil)
		if err != nil {
			if opts.Strict {
				return nil, skipped, fmt.Errorf("weblog: CLF line %d: %w", lineNo, err)
			}
			skipped++
			continue
		}
		opts.Decorate(&rec)
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("weblog: scanning CLF: %w", err)
	}
	return d, skipped, nil
}

// ParseCLFLine parses one Common/Combined Log Format line. The client host
// lands in IPHash (raw; anonymize afterwards, e.g. via CLFOptions.Decorate).
// It is the string form of ParseCLFLineBytes; both share one
// implementation, so they accept and reject identical inputs.
func ParseCLFLine(line string) (Record, error) {
	return ParseCLFLineBytes([]byte(line), nil)
}

// ParseCLFLineBytes parses one Common/Combined Log Format line directly
// from a byte slice — the hot-path form the streaming decoder uses — with
// the high-repetition columns routed through in (nil means plain copies).
// The returned Record never aliases line, so callers may reuse the buffer.
func ParseCLFLineBytes(line []byte, in *Intern) (Record, error) {
	var rec Record

	// host ident authuser
	host, rest, ok := cutSpace(line)
	if !ok {
		return rec, fmt.Errorf("missing host field")
	}
	if len(host) == 0 {
		// A leading space would otherwise shift every field left and let a
		// hostless line through (found by FuzzParseCLF).
		return rec, fmt.Errorf("empty host field")
	}
	rec.IPHash = in.Bytes(host)
	if _, rest, ok = cutSpace(rest); !ok { // ident
		return rec, fmt.Errorf("missing ident field")
	}
	if _, rest, ok = cutSpace(rest); !ok { // authuser
		return rec, fmt.Errorf("missing authuser field")
	}

	// [timestamp]
	if len(rest) == 0 || rest[0] != '[' {
		return rec, fmt.Errorf("missing '[' before timestamp")
	}
	end := bytes.IndexByte(rest, ']')
	if end < 0 {
		return rec, fmt.Errorf("unterminated timestamp")
	}
	ts, err := parseCLFTime(rest[1:end])
	if err != nil {
		return rec, fmt.Errorf("bad timestamp: %w", err)
	}
	rec.Time = ts
	rest = trimLeftSpace(rest[end+1:])

	// "METHOD path HTTP/v"
	reqLine, rest, err := quoted(rest)
	if err != nil {
		return rec, fmt.Errorf("request line: %w", err)
	}
	// The path is the second space-separated token (the whole request line
	// when there is no space at all).
	if sp := indexByteSWAR(reqLine, ' '); sp >= 0 {
		path := reqLine[sp+1:]
		if sp2 := indexByteSWAR(path, ' '); sp2 >= 0 {
			path = path[:sp2]
		}
		rec.Path = in.Bytes(path)
	} else {
		rec.Path = in.Bytes(reqLine)
	}

	// status bytes — cutSpace returns the whole remainder as head when no
	// space follows, covering tokens at end of line.
	statusStr, rest, _ := cutSpace(trimLeftSpace(rest))
	if len(statusStr) == 0 {
		return rec, fmt.Errorf("missing status")
	}
	status, err := atoiBytes(statusStr)
	if err != nil {
		return rec, fmt.Errorf("bad status %q", statusStr)
	}
	rec.Status = status

	bytesStr, rest, _ := cutSpace(trimLeftSpace(rest))
	bytesStr = bytes.TrimSpace(bytesStr)
	if len(bytesStr) != 0 && !bytes.Equal(bytesStr, dashField) {
		n, err := parseInt64Bytes(bytesStr)
		if err != nil {
			return rec, fmt.Errorf("bad bytes %q", bytesStr)
		}
		rec.Bytes = n
	}

	// Optional Combined extras: "referer" "user-agent".
	rest = trimLeftSpace(rest)
	if len(rest) != 0 {
		ref, rest2, err := quoted(rest)
		if err != nil {
			return rec, fmt.Errorf("referer: %w", err)
		}
		if !bytes.Equal(ref, dashField) {
			rec.Referer = in.Bytes(ref)
		}
		rest2 = trimLeftSpace(rest2)
		if len(rest2) != 0 {
			ua, _, err := quoted(rest2)
			if err != nil {
				return rec, fmt.Errorf("user agent: %w", err)
			}
			if !bytes.Equal(ua, dashField) {
				rec.UserAgent = in.Bytes(ua)
			}
		}
	}
	return rec, nil
}

// dashField is CLF's "no value" marker.
var dashField = []byte("-")

// cutSpace splits at the first space. CLF tokens are a few bytes each, so
// the inlined SWAR scan beats a bytes.IndexByte call (the call overhead
// dominates at these lengths); the split positions are identical.
func cutSpace(s []byte) (head, rest []byte, ok bool) {
	i := indexByteSWAR(s, ' ')
	if i < 0 {
		return s, nil, false
	}
	return s[:i], s[i+1:], true
}

// trimLeftSpace drops leading ' ' bytes (the only padding CLF uses).
func trimLeftSpace(s []byte) []byte {
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	return s
}

// quoted parses a leading double-quoted field, handling backslash escapes
// the way httpd writes them (\" and \\). The returned value aliases s when
// the field has no escapes (the common case — zero copies) and is a fresh
// buffer otherwise; callers must copy (or intern) before retaining it.
func quoted(s []byte) (value, rest []byte, err error) {
	if len(s) == 0 || s[0] != '"' {
		return nil, nil, fmt.Errorf("missing opening quote")
	}
	// Fast path: one SWAR pass finds whichever comes first — the closing
	// quote or a backslash that diverts to the unescaping path. This is the
	// case a single-needle bytes.IndexByte cannot express: scanning for the
	// quote alone could run past an escape ("\"" inside the field), and two
	// separate scans would walk the field twice.
	j := IndexAny2(s[1:], '"', '\\')
	if j < 0 {
		return nil, nil, fmt.Errorf("unterminated quote")
	}
	i := j + 1
	if s[i] == '"' {
		return s[1:i], s[i+1:], nil
	}
	return quotedEscaped(s, i)
}

// quotedEscaped finishes parsing a quoted field that contains escapes,
// building the unescaped value into a fresh buffer. i is the offset of the
// first backslash.
func quotedEscaped(s []byte, i int) (value, rest []byte, err error) {
	buf := append(make([]byte, 0, len(s)-i), s[1:i]...)
	for i < len(s) {
		c := s[i]
		switch c {
		case '\\':
			if i+1 < len(s) {
				buf = append(buf, s[i+1])
				i += 2
				continue
			}
			return nil, nil, fmt.Errorf("dangling escape")
		case '"':
			return buf, s[i+1:], nil
		default:
			buf = append(buf, c)
			i++
		}
	}
	return nil, nil, fmt.Errorf("unterminated quote")
}

// clfMonths are the canonical month abbreviations of the CLF timestamp, in
// layout order (case-sensitive: the strict fast path accepts exactly what
// servers emit and defers anything else to time.Parse).
var clfMonths = [12]string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// parseCLFTime parses a CLF timestamp ("02/Jan/2006:15:04:05 -0700") into
// UTC. The strict fast path accepts the canonical fixed-width form with the
// same field validation time.Parse applies; anything unusual (lenient
// widths, odd month casing, out-of-range zones) falls back to
// time.Parse(clfTimeLayout, ...) so acceptance and values are identical to
// the historical string path on every input.
func parseCLFTime(s []byte) (time.Time, error) {
	if t, ok := fastCLFTime(s); ok {
		return t, nil
	}
	t, err := time.Parse(clfTimeLayout, string(s))
	if err != nil {
		return time.Time{}, err
	}
	return t.UTC(), nil
}

// fastCLFTime is the strict zero-allocation CLF timestamp path.
func fastCLFTime(s []byte) (time.Time, bool) {
	if len(s) != len("02/Jan/2006:15:04:05 -0700") {
		return time.Time{}, false
	}
	if s[2] != '/' || s[6] != '/' || s[11] != ':' || s[14] != ':' || s[17] != ':' || s[20] != ' ' {
		return time.Time{}, false
	}
	month := 0
	for i, m := range clfMonths {
		if s[3] == m[0] && s[4] == m[1] && s[5] == m[2] {
			month = i + 1
			break
		}
	}
	if month == 0 {
		return time.Time{}, false
	}
	year, ok := num4(s[7:11])
	if !ok {
		return time.Time{}, false
	}
	day, ok := numRange(s[0:2], 1, daysIn(time.Month(month), year))
	if !ok {
		return time.Time{}, false
	}
	hour, ok := numRange(s[12:14], 0, 23)
	if !ok {
		return time.Time{}, false
	}
	min, ok := numRange(s[15:17], 0, 59)
	if !ok {
		return time.Time{}, false
	}
	sec, ok := numRange(s[18:20], 0, 59)
	if !ok {
		return time.Time{}, false
	}
	if s[21] != '+' && s[21] != '-' {
		return time.Time{}, false
	}
	zh, ok := numRange(s[22:24], 0, 23)
	if !ok {
		return time.Time{}, false
	}
	zm, ok := numRange(s[24:26], 0, 59)
	if !ok {
		return time.Time{}, false
	}
	offset := zh*3600 + zm*60
	if s[21] == '-' {
		offset = -offset
	}
	t := time.Date(year, time.Month(month), day, hour, min, sec, 0, time.UTC)
	return t.Add(-time.Duration(offset) * time.Second), true
}

// WriteCLF exports a dataset as Combined Log Format, the inverse of
// ReadCLF (site and ASN columns are dropped; hashes stand in for hosts).
func WriteCLF(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := range d.Records {
		r := &d.Records[i]
		ref := r.Referer
		if ref == "" {
			ref = "-"
		}
		ua := r.UserAgent
		if ua == "" {
			ua = "-"
		}
		_, err := fmt.Fprintf(bw, "%s - - [%s] \"GET %s HTTP/1.1\" %d %d %q %q\n",
			r.IPHash,
			r.Time.UTC().Format(clfTimeLayout),
			r.Path, r.Status, r.Bytes, ref, ua)
		if err != nil {
			return fmt.Errorf("weblog: writing CLF record %d: %w", i, err)
		}
	}
	return bw.Flush()
}
