package weblog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const sampleCombined = `203.0.113.7 - - [12/Feb/2025:08:30:00 +0000] "GET /people/profile-0001 HTTP/1.1" 200 2048 "https://www.example.edu/" "Mozilla/5.0 (compatible; Googlebot/2.1; +http://www.google.com/bot.html)"
203.0.113.9 - - [12/Feb/2025:08:30:15 +0000] "GET /robots.txt HTTP/1.1" 200 120 "-" "GPTBot/1.2"
`

func TestReadCLFCombined(t *testing.T) {
	d, skipped, err := ReadCLF(strings.NewReader(sampleCombined), CLFOptions{Site: "www"})
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if d.Len() != 2 {
		t.Fatalf("records = %d", d.Len())
	}
	r := d.Records[0]
	if r.IPHash != "203.0.113.7" || r.Path != "/people/profile-0001" ||
		r.Status != 200 || r.Bytes != 2048 || r.Site != "www" {
		t.Errorf("record = %+v", r)
	}
	if !strings.Contains(r.UserAgent, "Googlebot") || r.Referer != "https://www.example.edu/" {
		t.Errorf("ua/referer = %q / %q", r.UserAgent, r.Referer)
	}
	want := time.Date(2025, 2, 12, 8, 30, 0, 0, time.UTC)
	if !r.Time.Equal(want) {
		t.Errorf("time = %v, want %v", r.Time, want)
	}
	if !d.Records[1].IsRobotsFetch() {
		t.Error("second line is a robots fetch")
	}
}

func TestReadCLFCommonFormat(t *testing.T) {
	// No referer/UA pair: the original Common Log Format.
	line := `192.0.2.1 - frank [10/Oct/2000:13:55:36 -0700] "GET /apache_pb.gif HTTP/1.0" 200 2326` + "\n"
	d, skipped, err := ReadCLF(strings.NewReader(line), CLFOptions{Site: "s"})
	if err != nil || skipped != 0 || d.Len() != 1 {
		t.Fatalf("err=%v skipped=%d len=%d", err, skipped, d.Len())
	}
	r := d.Records[0]
	if r.Path != "/apache_pb.gif" || r.Status != 200 || r.Bytes != 2326 || r.UserAgent != "" {
		t.Errorf("record = %+v", r)
	}
	// The CLF timestamp keeps its zone offset but normalizes to UTC.
	if r.Time.Hour() != 20 {
		t.Errorf("UTC conversion: %v", r.Time)
	}
}

func TestReadCLFDashBytes(t *testing.T) {
	line := `192.0.2.1 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 304 -` + "\n"
	d, _, err := ReadCLF(strings.NewReader(line), CLFOptions{})
	if err != nil || d.Records[0].Bytes != 0 || d.Records[0].Status != 304 {
		t.Fatalf("dash bytes mishandled: %v %+v", err, d.Records)
	}
}

func TestReadCLFEscapedQuotes(t *testing.T) {
	line := `192.0.2.1 - - [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 1 "-" "agent with \"quotes\" inside"` + "\n"
	d, _, err := ReadCLF(strings.NewReader(line), CLFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Records[0].UserAgent != `agent with "quotes" inside` {
		t.Errorf("ua = %q", d.Records[0].UserAgent)
	}
}

func TestReadCLFSkipsMalformed(t *testing.T) {
	input := "garbage line without fields\n" + sampleCombined
	d, skipped, err := ReadCLF(strings.NewReader(input), CLFOptions{})
	if err != nil || skipped != 1 || d.Len() != 2 {
		t.Fatalf("err=%v skipped=%d len=%d", err, skipped, d.Len())
	}
}

func TestReadCLFStrict(t *testing.T) {
	if _, _, err := ReadCLF(strings.NewReader("nope\n"), CLFOptions{Strict: true}); err == nil {
		t.Error("strict mode must error on malformed line")
	}
}

func TestReadCLFMalformedVariants(t *testing.T) {
	bad := []string{
		`h i a [bad-timestamp] "GET / HTTP/1.0" 200 1`,
		`h i a [10/Oct/2000:13:55:36 -0700 "GET / HTTP/1.0" 200 1`, // unterminated [
		`h i a [10/Oct/2000:13:55:36 -0700] GET / HTTP/1.0 200 1`,  // unquoted request
		`h i a [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" abc 1`,
		`h i a [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 xyz`,
		`h i a [10/Oct/2000:13:55:36 -0700] "GET / HTTP/1.0" 200 1 "unterminated`,
	}
	for _, line := range bad {
		if _, _, err := ReadCLF(strings.NewReader(line+"\n"), CLFOptions{Strict: true}); err == nil {
			t.Errorf("expected error for %q", line)
		}
	}
}

func TestReadCLFAnonymizesAndEnriches(t *testing.T) {
	opts := CLFOptions{
		Site:       "www",
		Anonymizer: NewAnonymizer([]byte("k")),
		ASNFor: func(host string) string {
			if host == "203.0.113.7" {
				return "GOOGLE"
			}
			return "UNKNOWN"
		},
	}
	d, _, err := ReadCLF(strings.NewReader(sampleCombined), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Records[0].ASN != "GOOGLE" {
		t.Errorf("ASN = %q", d.Records[0].ASN)
	}
	if d.Records[0].IPHash == "203.0.113.7" || len(d.Records[0].IPHash) != 16 {
		t.Errorf("IP not anonymized: %q", d.Records[0].IPHash)
	}
}

func TestCLFRoundTrip(t *testing.T) {
	src := &Dataset{Records: []Record{
		{
			UserAgent: "GPTBot/1.2", Time: time.Date(2025, 2, 12, 8, 0, 0, 0, time.UTC),
			IPHash: "0123456789abcdef", Path: "/a/b?q=1", Status: 200, Bytes: 512,
			Referer: "https://ref.example/",
		},
		{
			UserAgent: "", Time: time.Date(2025, 2, 12, 9, 0, 0, 0, time.UTC),
			IPHash: "fedcba9876543210", Path: "/robots.txt", Status: 404, Bytes: 0,
		},
	}}
	var buf bytes.Buffer
	if err := WriteCLF(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadCLF(&buf, CLFOptions{})
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := range src.Records {
		w, g := src.Records[i], got.Records[i]
		if g.Path != w.Path || g.Status != w.Status || g.Bytes != w.Bytes ||
			g.UserAgent != w.UserAgent || g.Referer != w.Referer || !g.Time.Equal(w.Time) {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestQuickCLFRoundTripPaths(t *testing.T) {
	f := func(raw string) bool {
		path := "/" + strings.Map(func(r rune) rune {
			if r <= ' ' || r == '"' || r == '\\' || r > 126 {
				return 'x'
			}
			return r
		}, raw)
		src := &Dataset{Records: []Record{{
			UserAgent: "QB/1", Time: time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
			IPHash: "h", Path: path, Status: 200, Bytes: 1,
		}}}
		var buf bytes.Buffer
		if err := WriteCLF(&buf, src); err != nil {
			return false
		}
		got, _, err := ReadCLF(&buf, CLFOptions{})
		return err == nil && got.Len() == 1 && got.Records[0].Path == path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
