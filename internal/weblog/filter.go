package weblog

import "strings"

// Preprocessor reproduces the paper's data-preparation steps (§3.1):
// dropping traffic from vulnerability scanners and other irrelevant
// entities by IP hash, dropping institution-internal traffic, and
// enriching surviving records with standardized bot names/categories and
// ASN organization info.
type Preprocessor struct {
	// BlockedIPHashes are visitor hashes to drop entirely (the paper
	// screened out 3 hashes responsible for 294,362 accesses).
	BlockedIPHashes map[string]struct{}
	// InternalASNs are AS handles whose traffic is institution-internal
	// and must be excluded for privacy.
	InternalASNs map[string]struct{}
	// ScannerUAFragments drops any record whose user agent contains one of
	// these substrings under ASCII case folding: vulnerability scanners
	// etc. Fragments should be lowercase (uppercase fragment bytes never
	// match, as before — the record's user agent is the folded side).
	ScannerUAFragments []string
	// Enrich, if non-nil, is called for every surviving record to fill
	// BotName/Category (typically agent.Matcher-backed).
	Enrich func(*Record)

	// Dropped counts records removed by each rule, for audit reporting.
	Dropped struct {
		BlockedIP   int
		InternalASN int
		ScannerUA   int
	}

	// scannerVerdict memoizes the fragment scan per user-agent string:
	// access logs repeat a small set of UAs endlessly, so after warmup the
	// per-record cost is one map hit instead of one scan per fragment.
	// Like the counters, it is unsynchronized — Keep's one-goroutine
	// contract covers it. Fragments are assumed fixed once filtering
	// starts (editing ScannerUAFragments mid-run would stale the memo).
	scannerVerdict map[string]bool
}

// maxScannerVerdicts bounds the memo so a log of never-repeating
// adversarial user agents cannot grow it without limit; past the cap,
// unseen UAs are scanned directly, which is always correct.
const maxScannerVerdicts = 1 << 14

// DefaultScannerFragments lists UA fragments of common scanning tools that
// the paper's preprocessing removed as "not relevant to our analysis".
var DefaultScannerFragments = []string{
	"nuclei", "nessus", "nmap", "masscan", "zgrab", "sqlmap",
	"nikto", "acunetix", "qualys", "openvas", "burpcollaborator",
}

// NewPreprocessor returns a preprocessor with the default scanner list and
// empty block sets.
func NewPreprocessor() *Preprocessor {
	return &Preprocessor{
		BlockedIPHashes:    make(map[string]struct{}),
		InternalASNs:       make(map[string]struct{}),
		ScannerUAFragments: DefaultScannerFragments,
	}
}

// BlockIPHash adds a visitor hash to the drop list.
func (p *Preprocessor) BlockIPHash(h string) { p.BlockedIPHashes[h] = struct{}{} }

// BlockInternalASN adds an AS handle to the internal-traffic drop list.
func (p *Preprocessor) BlockInternalASN(handle string) {
	p.InternalASNs[strings.ToUpper(handle)] = struct{}{}
}

// Keep applies the drop rules to one record, incrementing the audit
// counters for dropped ones. It is the single-record form of Run, exposed
// so streaming ingestion (internal/stream) can filter with the exact batch
// semantics; call it from one goroutine at a time (the counters are not
// synchronized).
func (p *Preprocessor) Keep(r *Record) bool { return p.keep(r) }

// keep applies the drop rules to one record. It is allocation-free: this
// is the streaming dispatcher's per-record filter, so the user-agent scan
// folds case byte-wise instead of lowering the whole string.
func (p *Preprocessor) keep(r *Record) bool {
	if _, blocked := p.BlockedIPHashes[r.IPHash]; blocked {
		p.Dropped.BlockedIP++
		return false
	}
	if len(p.InternalASNs) > 0 {
		if _, internal := p.InternalASNs[strings.ToUpper(r.ASN)]; internal {
			p.Dropped.InternalASN++
			return false
		}
	}
	if len(p.ScannerUAFragments) > 0 {
		drop, seen := p.scannerVerdict[r.UserAgent]
		if !seen {
			for _, frag := range p.ScannerUAFragments {
				if containsASCIIFold(r.UserAgent, frag) {
					drop = true
					break
				}
			}
			if p.scannerVerdict == nil {
				p.scannerVerdict = make(map[string]bool)
			}
			if len(p.scannerVerdict) < maxScannerVerdicts {
				p.scannerVerdict[r.UserAgent] = drop
			}
		}
		if drop {
			p.Dropped.ScannerUA++
			return false
		}
	}
	return true
}

// containsASCIIFold reports whether ASCII-lowercasing s makes frag a
// substring — the allocation-free equivalent of
// strings.Contains(strings.ToLower(s), frag) for the ASCII fragments the
// scanner list holds (frag bytes are compared literally, so an uppercase
// fragment byte never matches, exactly as before).
//
// This is the per-record hot loop of the scanner filter — every fragment
// scans every surviving user agent — so instead of folding byte-by-byte at
// every alignment, a SWAR pass jumps straight to bytes whose fold equals
// the fragment's first byte (the byte itself or its uppercase form; no
// other byte folds to it) and only then verifies the remainder. The
// candidate set equals the naive scan's match-start set exactly, so the
// accepted inputs are unchanged.
func containsASCIIFold(s, frag string) bool {
	n := len(frag)
	if n == 0 {
		return true
	}
	c1 := frag[0]
	c2 := c1
	switch {
	case 'a' <= c1 && c1 <= 'z':
		c2 = c1 - ('a' - 'A')
	case 'A' <= c1 && c1 <= 'Z':
		// lowerASCII never yields an uppercase byte, so the naive scan's
		// first-byte test can never pass.
		return false
	}
	for i := 0; i+n <= len(s); i++ {
		k := indexAny2String(s[i:], c1, c2)
		if k < 0 || i+k+n > len(s) {
			return false
		}
		i += k
		j := 1
		for j < n && lowerASCII(s[i+j]) == frag[j] {
			j++
		}
		if j == n {
			return true
		}
	}
	return false
}

// lowerASCII folds one ASCII byte to lowercase.
func lowerASCII(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// Run filters and enriches the dataset, returning a new dataset; the input
// is not modified.
func (p *Preprocessor) Run(d *Dataset) *Dataset {
	out := &Dataset{Records: make([]Record, 0, len(d.Records))}
	for i := range d.Records {
		r := d.Records[i] // copy
		if !p.keep(&r) {
			continue
		}
		if p.Enrich != nil {
			p.Enrich(&r)
		}
		out.Records = append(out.Records, r)
	}
	return out
}

// TotalDropped sums the per-rule drop counters.
func (p *Preprocessor) TotalDropped() int {
	return p.Dropped.BlockedIP + p.Dropped.InternalASN + p.Dropped.ScannerUA
}
