package weblog

import (
	"strings"
	"testing"
	"time"
)

// FuzzParseCLF hammers the Common/Combined Log Format line parser with
// arbitrary input. The parser must never panic; when it accepts a line it
// must have produced a real timestamp and a non-empty host, and the
// accepted line must parse identically a second time (no hidden state).
func FuzzParseCLF(f *testing.F) {
	// Seeds: the corpus shapes the CLF tests and parity fixtures exercise.
	seeds := []string{
		`198.51.100.7 - - [12/Feb/2025:10:30:00 +0000] "GET /page-data/app.json HTTP/1.1" 200 1234 "-" "Mozilla/5.0 (compatible; GPTBot/1.2)"`,
		`h0042 - - [01/Mar/2025:00:00:00 +0000] "GET /robots.txt HTTP/1.1" 200 64 "http://ref.example/" "bingbot/2.0"`,
		`10.0.0.1 - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" 404 -`, // Common format, dash bytes
		`bad line`,
		``,
		`host - - [not-a-time] "GET / HTTP/1.1" 200 5 "-" "-"`,
		`host - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" xx 5`,
		`host - - [12/Feb/2025:10:30:00 +0000] "unterminated`,
		`host - - [12/Feb/2025:10:30:00 +0000] "esc\"aped path" 200 5 "r\\ef" "u\"a"`,
		`host - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" 200 5 "dangling\`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCLFLine(line)
		if err != nil {
			return
		}
		if rec.Time.IsZero() {
			t.Fatalf("accepted line %q with zero timestamp", line)
		}
		if rec.IPHash == "" {
			t.Fatalf("accepted line %q with empty host", line)
		}
		again, err2 := ParseCLFLine(line)
		if err2 != nil || again != rec {
			t.Fatalf("reparse of accepted line %q diverged: %+v / %v vs %+v", line, again, err2, rec)
		}
	})
}

// FuzzReadCLF checks the batch reader and the parser agree on skip
// counting: every non-blank line either parses or is counted skipped, and
// the reader never panics on arbitrary multi-line input.
func FuzzReadCLF(f *testing.F) {
	f.Add("198.51.100.7 - - [12/Feb/2025:10:30:00 +0000] \"GET / HTTP/1.1\" 200 10 \"-\" \"bot\"\n\njunk\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, skipped, err := ReadCLF(strings.NewReader(input), CLFOptions{Site: "www"})
		if err != nil {
			return // scanner-level failure (e.g. over-long line) is fine
		}
		parsed := 0
		for _, line := range strings.Split(input, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			if _, perr := ParseCLFLine(strings.TrimSpace(line)); perr == nil {
				parsed++
			}
		}
		if d.Len() != parsed {
			t.Fatalf("reader kept %d records, line-by-line parse accepts %d (skipped=%d)", d.Len(), parsed, skipped)
		}
		for i := range d.Records {
			if d.Records[i].Site != "www" {
				t.Fatalf("record %d not decorated with sitename", i)
			}
		}
	})
}

// timestampSeed keeps the seed corpus honest: the layouts above must stay
// parseable or the fuzz seeds silently degrade into noise.
func TestFuzzSeedTimestampsParse(t *testing.T) {
	if _, err := time.Parse(clfTimeLayout, "12/Feb/2025:10:30:00 +0000"); err != nil {
		t.Fatal(err)
	}
}
