package weblog

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// FuzzParseCLF hammers the Common/Combined Log Format line parser with
// arbitrary input. The parser must never panic; when it accepts a line it
// must have produced a real timestamp and a non-empty host, and the
// accepted line must parse identically a second time (no hidden state).
func FuzzParseCLF(f *testing.F) {
	// Seeds: the corpus shapes the CLF tests and parity fixtures exercise.
	seeds := []string{
		`198.51.100.7 - - [12/Feb/2025:10:30:00 +0000] "GET /page-data/app.json HTTP/1.1" 200 1234 "-" "Mozilla/5.0 (compatible; GPTBot/1.2)"`,
		`h0042 - - [01/Mar/2025:00:00:00 +0000] "GET /robots.txt HTTP/1.1" 200 64 "http://ref.example/" "bingbot/2.0"`,
		`10.0.0.1 - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" 404 -`, // Common format, dash bytes
		`bad line`,
		``,
		`host - - [not-a-time] "GET / HTTP/1.1" 200 5 "-" "-"`,
		`host - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" xx 5`,
		`host - - [12/Feb/2025:10:30:00 +0000] "unterminated`,
		`host - - [12/Feb/2025:10:30:00 +0000] "esc\"aped path" 200 5 "r\\ef" "u\"a"`,
		`host - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" 200 5 "dangling\`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseCLFLine(line)
		if err != nil {
			return
		}
		if rec.Time.IsZero() {
			t.Fatalf("accepted line %q with zero timestamp", line)
		}
		if rec.IPHash == "" {
			t.Fatalf("accepted line %q with empty host", line)
		}
		again, err2 := ParseCLFLine(line)
		if err2 != nil || again != rec {
			t.Fatalf("reparse of accepted line %q diverged: %+v / %v vs %+v", line, again, err2, rec)
		}
	})
}

// FuzzReadCLF checks the batch reader and the parser agree on skip
// counting: every non-blank line either parses or is counted skipped, and
// the reader never panics on arbitrary multi-line input.
func FuzzReadCLF(f *testing.F) {
	f.Add("198.51.100.7 - - [12/Feb/2025:10:30:00 +0000] \"GET / HTTP/1.1\" 200 10 \"-\" \"bot\"\n\njunk\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, skipped, err := ReadCLF(strings.NewReader(input), CLFOptions{Site: "www"})
		if err != nil {
			return // scanner-level failure (e.g. over-long line) is fine
		}
		parsed := 0
		for _, line := range strings.Split(input, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			if _, perr := ParseCLFLine(strings.TrimSpace(line)); perr == nil {
				parsed++
			}
		}
		if d.Len() != parsed {
			t.Fatalf("reader kept %d records, line-by-line parse accepts %d (skipped=%d)", d.Len(), parsed, skipped)
		}
		for i := range d.Records {
			if d.Records[i].Site != "www" {
				t.Fatalf("record %d not decorated with sitename", i)
			}
		}
	})
}

// timestampSeed keeps the seed corpus honest: the layouts above must stay
// parseable or the fuzz seeds silently degrade into noise.
func TestFuzzSeedTimestampsParse(t *testing.T) {
	if _, err := time.Parse(clfTimeLayout, "12/Feb/2025:10:30:00 +0000"); err != nil {
		t.Fatal(err)
	}
}

// referenceParseCLFLine is the pre-refactor string-based CLF parser,
// frozen verbatim as the independent reference implementation for the
// differential fuzz below. The production ParseCLFLine now delegates to
// ParseCLFLineBytes, so without this copy a string-vs-bytes comparison
// would be tautological — a tokenization bug in the []byte rewrite would
// corrupt both sides identically and never fire.
func referenceParseCLFLine(line string) (Record, error) {
	var rec Record

	// host ident authuser
	host, rest, ok := refCutSpace(line)
	if !ok {
		return rec, fmt.Errorf("missing host field")
	}
	if host == "" {
		return rec, fmt.Errorf("empty host field")
	}
	rec.IPHash = host
	if _, rest, ok = refCutSpace(rest); !ok { // ident
		return rec, fmt.Errorf("missing ident field")
	}
	if _, rest, ok = refCutSpace(rest); !ok { // authuser
		return rec, fmt.Errorf("missing authuser field")
	}

	// [timestamp]
	if len(rest) == 0 || rest[0] != '[' {
		return rec, fmt.Errorf("missing '[' before timestamp")
	}
	end := strings.IndexByte(rest, ']')
	if end < 0 {
		return rec, fmt.Errorf("unterminated timestamp")
	}
	ts, err := time.Parse(clfTimeLayout, rest[1:end])
	if err != nil {
		return rec, fmt.Errorf("bad timestamp: %w", err)
	}
	rec.Time = ts.UTC()
	rest = strings.TrimLeft(rest[end+1:], " ")

	// "METHOD path HTTP/v"
	reqLine, rest, err := refQuoted(rest)
	if err != nil {
		return rec, fmt.Errorf("request line: %w", err)
	}
	parts := strings.Split(reqLine, " ")
	if len(parts) >= 2 {
		rec.Path = parts[1]
	} else {
		rec.Path = reqLine
	}

	// status bytes
	statusStr, rest, _ := refCutSpace(strings.TrimLeft(rest, " "))
	if statusStr == "" {
		return rec, fmt.Errorf("missing status")
	}
	status, err := strconv.Atoi(statusStr)
	if err != nil {
		return rec, fmt.Errorf("bad status %q", statusStr)
	}
	rec.Status = status

	bytesStr, rest, _ := refCutSpace(strings.TrimLeft(rest, " "))
	bytesStr = strings.TrimSpace(bytesStr)
	if bytesStr != "" && bytesStr != "-" {
		n, err := strconv.ParseInt(bytesStr, 10, 64)
		if err != nil {
			return rec, fmt.Errorf("bad bytes %q", bytesStr)
		}
		rec.Bytes = n
	}

	// Optional Combined extras: "referer" "user-agent".
	rest = strings.TrimLeft(rest, " ")
	if rest != "" {
		ref, rest2, err := refQuoted(rest)
		if err != nil {
			return rec, fmt.Errorf("referer: %w", err)
		}
		if ref != "-" {
			rec.Referer = ref
		}
		rest2 = strings.TrimLeft(rest2, " ")
		if rest2 != "" {
			ua, _, err := refQuoted(rest2)
			if err != nil {
				return rec, fmt.Errorf("user agent: %w", err)
			}
			if ua != "-" {
				rec.UserAgent = ua
			}
		}
	}
	return rec, nil
}

// refCutSpace is the reference parser's split-at-first-space.
func refCutSpace(s string) (head, rest string, ok bool) {
	i := strings.IndexByte(s, ' ')
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// refQuoted is the reference parser's quoted-field scanner.
func refQuoted(s string) (value, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '\\':
			if i+1 < len(s) {
				b.WriteByte(s[i+1])
				i += 2
				continue
			}
			return "", "", fmt.Errorf("dangling escape")
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated quote")
}

// FuzzParseCLFBytes differential-fuzzes the []byte-native CLF parser (with
// interning, over a reused input buffer) against the frozen pre-refactor
// string parser above: identical acceptance and identical records on every
// input, and no record field may alias the input buffer after the parser
// returns. ParseCLFLine itself (a thin wrapper over the bytes form) is
// checked against the same reference in passing.
func FuzzParseCLFBytes(f *testing.F) {
	f.Add(`198.51.100.7 - - [12/Feb/2025:10:30:00 +0000] "GET /page-data/app.json HTTP/1.1" 200 1234 "-" "Mozilla/5.0 (compatible; GPTBot/1.2)"`)
	f.Add(`10.0.0.1 - - [12/Feb/2025:10:30:00 +0000] "GET / HTTP/1.1" 404 -`)
	f.Add(`host - - [12/Feb/2025:10:30:00 +0000] "esc\"aped path" 200 5 "r\\ef" "u\"a"`)
	f.Add(`host - - [12/feb/2025:9:30:00 +0000] "GET /x HTTP/1.1" 200 5`)
	f.Add(`bad line`)
	in := NewIntern()
	f.Fuzz(func(t *testing.T, line string) {
		want, werr := referenceParseCLFLine(line)
		buf := []byte(line)
		got, gerr := ParseCLFLineBytes(buf, in)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("acceptance diverged on %q: reference err=%v, bytes err=%v", line, werr, gerr)
		}
		wrapped, werr2 := ParseCLFLine(line)
		if (werr2 == nil) != (werr == nil) {
			t.Fatalf("acceptance diverged on %q: reference err=%v, wrapper err=%v", line, werr, werr2)
		}
		if werr != nil {
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("record diverged on %q:\nreference: %+v\nbytes:     %+v", line, want, got)
		}
		if !reflect.DeepEqual(want, wrapped) {
			t.Fatalf("wrapper diverged from reference on %q", line)
		}
		// The decoder reuses its scanner buffer between lines; scribbling
		// the input must not reach into the parsed record (want was parsed
		// from an untouched copy of the same line).
		for i := range buf {
			buf[i] ^= 0xA5
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("record aliases the input buffer on %q", line)
		}
	})
}

// FuzzParseJSONLBytes differential-fuzzes the interning JSONL parser
// against the plain one.
func FuzzParseJSONLBytes(f *testing.F) {
	f.Add([]byte(`{"useragent":"bot","timestamp":"2025-03-01T00:00:00Z","ip_hash":"h1","asn":"AS","sitename":"www","uri_path":"/x","status":200,"bytes":10}`))
	f.Add([]byte(`{"useragent":"bot"`))
	f.Add([]byte(`{"timestamp":"not a time"}`))
	in := NewIntern()
	f.Fuzz(func(t *testing.T, b []byte) {
		want, werr := ParseJSONLLine(b)
		got, gerr := ParseJSONLLineBytes(b, in)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("acceptance diverged: plain err=%v, interned err=%v", werr, gerr)
		}
		if werr == nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("record diverged:\nplain:    %+v\ninterned: %+v", want, got)
		}
	})
}
