package weblog

// Intern is a scoped string-interning table for the high-repetition columns
// of an access-log stream: user agent, client host, ASN, sitename, path,
// referer, and the enrichment labels. A log stream carries thousands of
// distinct values for these columns across millions of records, so mapping
// each freshly parsed []byte field onto one canonical string turns the
// per-record string allocations of the decode hot path into map lookups
// that allocate nothing at all (the Go compiler recognizes the
// map[string(b)] form and skips the conversion).
//
// The table is scoped to one decoding session — each streaming decoder owns
// its own — so its lifetime, and therefore the lifetime of every canonical
// string it pins, is the stream's. Growth is capped: past MaxEntries the
// table stops admitting new values and falls back to plain allocation, so
// an adversarial stream of unique values degrades to the un-interned cost
// instead of unbounded memory. An Intern is NOT safe for concurrent use;
// decoders run on the single dispatcher goroutine.
//
// Interning never changes parse results: canonical strings are
// byte-identical copies of the input, only their backing allocation is
// shared (the differential parser fuzz tests pin this down).
type Intern struct {
	m   map[string]string
	max int
}

// DefaultInternEntries caps an interning table built by NewIntern: generous
// for real column cardinalities (a year of logs has ~10⁴ distinct user
// agents), small enough that a pathological stream cannot hold more than a
// table's worth of dead strings live.
const DefaultInternEntries = 1 << 16

// NewIntern returns an empty table holding at most DefaultInternEntries
// distinct strings.
func NewIntern() *Intern {
	return &Intern{m: make(map[string]string), max: DefaultInternEntries}
}

// NewInternSize returns an empty table holding at most max distinct
// strings; max <= 0 means DefaultInternEntries.
func NewInternSize(max int) *Intern {
	if max <= 0 {
		max = DefaultInternEntries
	}
	return &Intern{m: make(map[string]string), max: max}
}

// Bytes returns the canonical string equal to b, copying b only the first
// time a value is seen (or on every call once the table is full). The
// result never aliases b's backing array, so callers may reuse b freely. A
// nil *Intern degrades to plain string conversion.
func (in *Intern) Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if in == nil {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	if len(in.m) < in.max {
		in.m[s] = s
	}
	return s
}

// String returns the canonical string equal to s, admitting s itself as
// the canonical copy when unseen. It lets already-string parse paths
// (JSONL's encoding/json output) share canonical storage with the []byte
// paths. A nil *Intern returns s unchanged.
func (in *Intern) String(s string) string {
	if s == "" || in == nil {
		return s
	}
	if c, ok := in.m[s]; ok {
		return c
	}
	if len(in.m) < in.max {
		in.m[s] = s
	}
	return s
}

// Len reports how many distinct strings the table currently holds.
func (in *Intern) Len() int {
	if in == nil {
		return 0
	}
	return len(in.m)
}
