package weblog

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the canonical column order for CSV encoding. It mirrors the
// field list in §3.1 of the paper plus the two enrichment columns.
var csvHeader = []string{
	"useragent", "timestamp", "ip_hash", "asn", "sitename", "uri_path",
	"status", "bytes", "referer", "bot_name", "bot_category",
}

// WriteCSV writes the dataset as CSV with a header row. Timestamps are
// ISO-8601 (RFC 3339) as in the paper's dataset.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("weblog: writing CSV header: %w", err)
	}
	row := make([]string, len(csvHeader))
	for i := range d.Records {
		r := &d.Records[i]
		row[0] = r.UserAgent
		row[1] = r.Time.UTC().Format(time.RFC3339)
		row[2] = r.IPHash
		row[3] = r.ASN
		row[4] = r.Site
		row[5] = r.Path
		row[6] = strconv.Itoa(r.Status)
		row[7] = strconv.FormatInt(r.Bytes, 10)
		row[8] = r.Referer
		row[9] = r.BotName
		row[10] = r.Category
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("weblog: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVSchema maps the columns of one CSV file to Record fields. It is built
// once from the header row and then decodes any number of rows, which is
// what lets the batch reader below and the streaming decoder in
// internal/stream share byte-identical parse semantics.
type CSVSchema struct {
	col map[string]int
}

// ParseCSVHeader builds a schema from a header row. Unknown extra columns
// are ignored; missing optional columns default to zero values at decode
// time.
func ParseCSVHeader(header []string) CSVSchema {
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[h] = i
	}
	return CSVSchema{col: col}
}

// get returns the named column of row, or "" when the column is absent or
// the row is ragged.
func (s CSVSchema) get(row []string, name string) string {
	if i, ok := s.col[name]; ok && i < len(row) {
		return row[i]
	}
	return ""
}

// DecodeRow decodes one data row under this schema. Ragged rows are
// tolerated: missing cells decode as zero values.
func (s CSVSchema) DecodeRow(row []string) (Record, error) {
	var rec Record
	rec.UserAgent = s.get(row, "useragent")
	if ts := s.get(row, "timestamp"); ts != "" {
		t, err := time.Parse(time.RFC3339, ts)
		if err != nil {
			return rec, fmt.Errorf("bad timestamp %q: %w", ts, err)
		}
		rec.Time = t
	}
	rec.IPHash = s.get(row, "ip_hash")
	rec.ASN = s.get(row, "asn")
	rec.Site = s.get(row, "sitename")
	rec.Path = s.get(row, "uri_path")
	if v := s.get(row, "status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return rec, fmt.Errorf("bad status %q: %w", v, err)
		}
		rec.Status = n
	}
	if v := s.get(row, "bytes"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return rec, fmt.Errorf("bad bytes %q: %w", v, err)
		}
		rec.Bytes = n
	}
	rec.Referer = s.get(row, "referer")
	rec.BotName = s.get(row, "bot_name")
	rec.Category = s.get(row, "bot_category")
	return rec, nil
}

// ReadCSV reads a dataset written by WriteCSV. Unknown extra columns are
// ignored; missing optional columns default to zero values.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("weblog: reading CSV header: %w", err)
	}
	schema := ParseCSVHeader(header)
	d := &Dataset{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("weblog: reading CSV line %d: %w", line, err)
		}
		rec, err := schema.DecodeRow(row)
		if err != nil {
			return nil, fmt.Errorf("weblog: CSV line %d: %w", line, err)
		}
		d.Records = append(d.Records, rec)
	}
	return d, nil
}

// jsonRecord is the JSONL wire form with stable snake_case keys.
type jsonRecord struct {
	UserAgent string `json:"useragent"`
	Timestamp string `json:"timestamp"`
	IPHash    string `json:"ip_hash"`
	ASN       string `json:"asn"`
	Site      string `json:"sitename"`
	Path      string `json:"uri_path"`
	Status    int    `json:"status"`
	Bytes     int64  `json:"bytes"`
	Referer   string `json:"referer,omitempty"`
	BotName   string `json:"bot_name,omitempty"`
	Category  string `json:"bot_category,omitempty"`
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Records {
		r := &d.Records[i]
		jr := jsonRecord{
			UserAgent: r.UserAgent,
			Timestamp: r.Time.UTC().Format(time.RFC3339),
			IPHash:    r.IPHash,
			ASN:       r.ASN,
			Site:      r.Site,
			Path:      r.Path,
			Status:    r.Status,
			Bytes:     r.Bytes,
			Referer:   r.Referer,
			BotName:   r.BotName,
			Category:  r.Category,
		}
		if err := enc.Encode(&jr); err != nil {
			return fmt.Errorf("weblog: encoding JSONL record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ParseJSONLLine decodes one JSONL line (as written by WriteJSONL) into a
// Record. The batch reader and the streaming decoder both go through here.
func ParseJSONLLine(b []byte) (Record, error) {
	var jr jsonRecord
	var rec Record
	if err := json.Unmarshal(b, &jr); err != nil {
		return rec, err
	}
	rec.UserAgent = jr.UserAgent
	if jr.Timestamp != "" {
		t, err := time.Parse(time.RFC3339, jr.Timestamp)
		if err != nil {
			return rec, fmt.Errorf("bad timestamp: %w", err)
		}
		rec.Time = t
	}
	rec.IPHash = jr.IPHash
	rec.ASN = jr.ASN
	rec.Site = jr.Site
	rec.Path = jr.Path
	rec.Status = jr.Status
	rec.Bytes = jr.Bytes
	rec.Referer = jr.Referer
	rec.BotName = jr.BotName
	rec.Category = jr.Category
	return rec, nil
}

// ReadJSONL reads a dataset written by WriteJSONL; blank lines are skipped.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		rec, err := ParseJSONLLine(b)
		if err != nil {
			return nil, fmt.Errorf("weblog: JSONL line %d: %w", line, err)
		}
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("weblog: scanning JSONL: %w", err)
	}
	return d, nil
}
