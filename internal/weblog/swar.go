// swar.go holds the SWAR (SIMD-within-a-register) byte-scanning and
// digit-parsing primitives behind the hot-path parsers: 8 input bytes are
// loaded into one uint64 and examined with a handful of arithmetic ops
// instead of a byte-at-a-time loop. Everything here is acceptance-neutral
// by construction — the helpers either report exactly the same positions a
// linear scan would (IndexAny2, indexByteSWAR) or validate the full input
// before converting it (digit parsing), so the callers' accepted input
// sets are unchanged and the differential fuzz suites that pin them
// (FuzzParseCLFBytes, FuzzDecodeCSV, FuzzDigitsFast) keep holding.
//
// Why not bytes.IndexByte everywhere? That routine is vectorized assembly
// and unbeatable for one needle over a long haystack — and the quoted-field
// scanners keep using it. The wins here are the cases it cannot express:
// finding the first of TWO delimiters in one pass (a comma or an illegal
// quote in a CSV field; a closing quote or an escape in a CLF field), and
// short fixed fields where the call overhead dominates.
package weblog

import (
	"encoding/binary"
	"math/bits"
)

// swarOnes and swarHighs are the classic SWAR lane constants: the low bit
// and the high bit of every byte lane, respectively.
const (
	swarOnes  = 0x0101010101010101
	swarHighs = 0x8080808080808080
)

// swarZeroMask returns a mask whose high lane bits mark zero bytes of x.
// Lanes ABOVE the least-significant zero byte may false-positive (a borrow
// out of a zero lane can flag its neighbor), so only the lowest set bit is
// exact — which is the only bit first-match scans consult. OR-ing two such
// masks before taking the lowest bit is equally exact: a false positive
// in either mask can only sit above that mask's own genuine match, hence
// above the combined first match too.
func swarZeroMask(x uint64) uint64 {
	return (x - swarOnes) &^ x & swarHighs
}

// IndexAny2 returns the index of the first byte in b equal to c1 or c2, or
// -1 if neither occurs — identical to the smaller non-negative result of
// two bytes.IndexByte calls, found in a single 8-bytes-per-step pass.
func IndexAny2(b []byte, c1, c2 byte) int {
	p1 := swarOnes * uint64(c1)
	p2 := swarOnes * uint64(c2)
	i := 0
	for ; i+8 <= len(b); i += 8 {
		chunk := binary.LittleEndian.Uint64(b[i:])
		if m := swarZeroMask(chunk^p1) | swarZeroMask(chunk^p2); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(b); i++ {
		if b[i] == c1 || b[i] == c2 {
			return i
		}
	}
	return -1
}

// indexByteSWAR is the single-needle form of IndexAny2, for short fields
// where bytes.IndexByte's call and setup overhead outweighs its vectorized
// inner loop (CLF's space-separated tokens are a few bytes each).
func indexByteSWAR(b []byte, c byte) int {
	p := swarOnes * uint64(c)
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if m := swarZeroMask(binary.LittleEndian.Uint64(b[i:]) ^ p); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// indexAny2String is IndexAny2 over a string, for callers holding record
// fields (the compiler combines the explicit little-endian byte loads into
// one 8-byte load, so the inner loop matches the slice form).
func indexAny2String(s string, c1, c2 byte) int {
	p1 := swarOnes * uint64(c1)
	p2 := swarOnes * uint64(c2)
	i := 0
	for ; i+8 <= len(s); i += 8 {
		chunk := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		if m := swarZeroMask(chunk^p1) | swarZeroMask(chunk^p2); m != 0 {
			return i + bits.TrailingZeros64(m)>>3
		}
	}
	for ; i < len(s); i++ {
		if s[i] == c1 || s[i] == c2 {
			return i
		}
	}
	return -1
}

// allDigits8 reports whether every byte of chunk is an ASCII digit. The
// first test pins every lane's high nibble to 0x3; given that, adding 6
// overflows the low nibble into the high one exactly for lanes above '9'
// (0x3A–0x3F), and no lane can carry into its neighbor.
func allDigits8(chunk uint64) bool {
	const (
		nibbleHigh = 0xF0F0F0F0F0F0F0F0
		ascii0     = 0x3030303030303030
		plus6      = 0x0606060606060606
	)
	return chunk&nibbleHigh == ascii0 && (chunk+plus6)&nibbleHigh == ascii0
}

// parse8Digits converts 8 ASCII digits — loaded little-endian, so the
// leftmost (most significant) digit sits in the lowest byte — to their
// decimal value in three multiply-mask steps: adjacent lanes are combined
// pairwise (d*10+d), then pair-wise again (p*100+p), then once more
// (q*10000+q), halving the lane count each time. Callers must have
// validated the chunk with allDigits8.
func parse8Digits(chunk uint64) uint64 {
	chunk &= 0x0F0F0F0F0F0F0F0F
	chunk = (chunk * (1 + 10<<8)) >> 8 & 0x00FF00FF00FF00FF
	chunk = (chunk * (1 + 100<<16)) >> 16 & 0x0000FFFF0000FFFF
	chunk = (chunk * (1 + 10000<<32)) >> 32
	return chunk & 0xFFFFFFFF
}
