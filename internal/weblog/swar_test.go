package weblog

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
)

// refIndexAny2 is the obvious linear scan IndexAny2 must match exactly.
func refIndexAny2(b []byte, c1, c2 byte) int {
	for i := range b {
		if b[i] == c1 || b[i] == c2 {
			return i
		}
	}
	return -1
}

// TestIndexAny2Exhaustive places every needle byte at every position of
// every length up to several SWAR chunks, so chunk boundaries, tail bytes,
// and both-needle ties are all covered.
func TestIndexAny2Exhaustive(t *testing.T) {
	needles := [][2]byte{{',', '"'}, {'"', '\\'}, {' ', ' '}, {0x00, 0xFF}}
	for _, nn := range needles {
		c1, c2 := nn[0], nn[1]
		for length := 0; length <= 40; length++ {
			base := bytes.Repeat([]byte{'x'}, length)
			if got := IndexAny2(base, c1, c2); got != refIndexAny2(base, c1, c2) {
				t.Fatalf("IndexAny2(%q, %q, %q) = %d, want %d", base, c1, c2, got, refIndexAny2(base, c1, c2))
			}
			for pos := 0; pos < length; pos++ {
				for _, c := range []byte{c1, c2} {
					b := bytes.Repeat([]byte{'x'}, length)
					b[pos] = c
					if got, want := IndexAny2(b, c1, c2), refIndexAny2(b, c1, c2); got != want {
						t.Fatalf("IndexAny2(%q, %q, %q) = %d, want %d", b, c1, c2, got, want)
					}
				}
			}
		}
	}
}

// TestIndexAny2Random stresses the scanner with random bytes — including
// 0x80+ values, where a naive SWAR borrow would false-positive — against
// the linear reference.
func TestIndexAny2Random(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20000; trial++ {
		b := make([]byte, rng.Intn(64))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		c1, c2 := byte(rng.Intn(256)), byte(rng.Intn(256))
		if got, want := IndexAny2(b, c1, c2), refIndexAny2(b, c1, c2); got != want {
			t.Fatalf("IndexAny2(%x, %#x, %#x) = %d, want %d", b, c1, c2, got, want)
		}
	}
}

// TestIndexByteSWAR pins the single-needle scanner to bytes.IndexByte on
// exhaustive positions and random inputs.
func TestIndexByteSWAR(t *testing.T) {
	for length := 0; length <= 40; length++ {
		for pos := 0; pos < length; pos++ {
			b := bytes.Repeat([]byte{'a'}, length)
			b[pos] = ' '
			if got, want := indexByteSWAR(b, ' '), bytes.IndexByte(b, ' '); got != want {
				t.Fatalf("indexByteSWAR(%q) = %d, want %d", b, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20000; trial++ {
		b := make([]byte, rng.Intn(64))
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		c := byte(rng.Intn(256))
		if got, want := indexByteSWAR(b, c), bytes.IndexByte(b, c); got != want {
			t.Fatalf("indexByteSWAR(%x, %#x) = %d, want %d", b, c, got, want)
		}
	}
}

// refDigitsFast is the byte-at-a-time loop digitsFast replaced; the SWAR
// version must accept the same set and produce the same values.
func refDigitsFast(v []byte, maxDigits int) (int64, bool) {
	if len(v) == 0 || len(v) > maxDigits {
		return 0, false
	}
	var n int64
	for _, c := range v {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// TestDigitsFastMatchesReference sweeps all-digit strings of every length
// 1..20 (leading zeros included), plus every single-byte corruption of
// each, through both maxDigits profiles the parsers use (9 and 18).
func TestDigitsFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, maxDigits := range []int{9, 18} {
		for length := 0; length <= 20; length++ {
			for trial := 0; trial < 200; trial++ {
				v := make([]byte, length)
				for i := range v {
					v[i] = '0' + byte(rng.Intn(10))
				}
				checkDigitsFast(t, v, maxDigits)
				if length > 0 {
					// Corrupt one byte with a near-digit value ('/' and ':'
					// border the digit range; '0'|0x80 defeats naive masks).
					w := append([]byte(nil), v...)
					w[rng.Intn(length)] = []byte{'/', ':', 0x00, 0xFF, '0' | 0x80, ' ', '-', '+'}[rng.Intn(8)]
					checkDigitsFast(t, w, maxDigits)
				}
			}
		}
	}
}

func checkDigitsFast(t *testing.T, v []byte, maxDigits int) {
	t.Helper()
	got, okGot := digitsFast(v, maxDigits)
	want, okWant := refDigitsFast(v, maxDigits)
	if got != want || okGot != okWant {
		t.Fatalf("digitsFast(%q, %d) = (%d, %v), want (%d, %v)", v, maxDigits, got, okGot, want, okWant)
	}
}

// refContainsASCIIFold is the naive fold-and-compare scan the SWAR
// first-byte skip replaced; every (haystack, fragment) pair must agree.
func refContainsASCIIFold(s, frag string) bool {
	n := len(frag)
	if n == 0 {
		return true
	}
	for i := 0; i+n <= len(s); i++ {
		j := 0
		for j < n && lowerASCII(s[i+j]) == frag[j] {
			j++
		}
		if j == n {
			return true
		}
	}
	return false
}

// TestContainsASCIIFold pins the skip-scan to the reference on the real
// scanner list over crafted user agents (match at start/middle/end, case
// variants, near-misses, uppercase and non-letter fragment bytes) and on
// random byte strings including 0x80+ values.
func TestContainsASCIIFold(t *testing.T) {
	frags := append([]string{"", "n", "N", "7z", "bot/", "x\x80y"},
		DefaultScannerFragments...)
	haystacks := []string{
		"", "n", "N", "nuclei", "NUCLEI", "Nuclei/3.1", "xnucle", "nucle",
		"Mozilla/5.0 (compatible; Nmap Scripting Engine)",
		"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 masscan/1.3",
		"curl/8.0 sqlmap", "SQLMAP", "nnnnnnnnnnnnnnnucleus", "nucleinuclei",
		"a string that mentions nessus right in the middle of itself",
		"trailing-nikto", "NIKTO-leading", "burpcollaborato", "x\x80y",
	}
	for _, frag := range frags {
		for _, s := range haystacks {
			if got, want := containsASCIIFold(s, frag), refContainsASCIIFold(s, frag); got != want {
				t.Fatalf("containsASCIIFold(%q, %q) = %v, want %v", s, frag, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(13))
	alphabet := []byte("nNuUcC\x80\xffaz ")
	for trial := 0; trial < 50000; trial++ {
		b := make([]byte, rng.Intn(48))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		f := make([]byte, rng.Intn(5))
		for i := range f {
			f[i] = alphabet[rng.Intn(len(alphabet))]
		}
		s, frag := string(b), string(f)
		if got, want := containsASCIIFold(s, frag), refContainsASCIIFold(s, frag); got != want {
			t.Fatalf("containsASCIIFold(%q, %q) = %v, want %v", s, frag, got, want)
		}
	}
}

// TestParse8Digits checks the multiply-mask chain against strconv on
// boundary values and a dense random sample.
func TestParse8Digits(t *testing.T) {
	check := func(n uint64) {
		s := []byte(strconv.FormatUint(n, 10))
		for len(s) < 8 {
			s = append([]byte{'0'}, s...)
		}
		var chunk uint64
		for i := 7; i >= 0; i-- {
			chunk = chunk<<8 | uint64(s[i])
		}
		if !allDigits8(chunk) {
			t.Fatalf("allDigits8(%q) = false", s)
		}
		if got := parse8Digits(chunk); got != n {
			t.Fatalf("parse8Digits(%q) = %d, want %d", s, got, n)
		}
	}
	for _, n := range []uint64{0, 1, 9, 10, 12345678, 10000000, 99999999, 90000009, 11111111} {
		check(n)
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50000; trial++ {
		check(uint64(rng.Intn(100000000)))
	}
}

// FuzzDigitsFast differentially fuzzes the SWAR integer fast paths against
// strconv through their public callers: atoiBytes vs strconv.Atoi and
// parseInt64Bytes vs strconv.ParseInt must agree on acceptance and value
// for arbitrary bytes.
func FuzzDigitsFast(f *testing.F) {
	f.Add([]byte("0"))
	f.Add([]byte("200"))
	f.Add([]byte("123456789"))
	f.Add([]byte("999999999999999999"))
	f.Add([]byte("92233720368547758079")) // > int64, falls back and overflows
	f.Add([]byte("-42"))
	f.Add([]byte("12a45678"))
	f.Add([]byte("0000000000000000001"))
	f.Fuzz(func(t *testing.T, v []byte) {
		gotA, errA := atoiBytes(v)
		wantA, werrA := strconv.Atoi(string(v))
		if (errA == nil) != (werrA == nil) || (errA == nil && gotA != wantA) {
			t.Fatalf("atoiBytes(%q) = (%d, %v), strconv.Atoi = (%d, %v)", v, gotA, errA, wantA, werrA)
		}
		got64, err64 := parseInt64Bytes(v)
		want64, werr64 := strconv.ParseInt(string(v), 10, 64)
		if (err64 == nil) != (werr64 == nil) || (err64 == nil && got64 != want64) {
			t.Fatalf("parseInt64Bytes(%q) = (%d, %v), strconv.ParseInt = (%d, %v)", v, got64, err64, want64, werr64)
		}
	})
}
