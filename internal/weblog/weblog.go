// Package weblog defines the anonymized web-access record format the study
// is built on (§3.1 of the paper) and the preprocessing pipeline that turns
// raw server logs into the analysis dataset: IP anonymization, scanner
// filtering, and ASN/bot-name enrichment.
//
// Each Record corresponds to one page access by one web visitor at one
// time, carrying exactly the fields the paper's dataset carries: user
// agent, ISO-8601 timestamp, one-way IP hash, ASN, sitename, URI path,
// status code, bytes transferred, and referer.
package weblog

import (
	"sort"
	"strings"
	"time"
)

// Record is one web access. The zero value is not useful; populate every
// field (Referer may be empty).
type Record struct {
	// UserAgent is the self-reported User-Agent header value.
	UserAgent string
	// Time is the moment of the request.
	Time time.Time
	// IPHash is the one-way cryptographic hash of the visitor IP
	// (hex-encoded, produced by Anonymizer).
	IPHash string
	// ASN is the handle of the autonomous system announcing the visitor IP
	// ("GOOGLE", "AMAZON-02", ...).
	ASN string
	// Site is the base website accessed ("www", "dining", "people", ...).
	Site string
	// Path is the requested resource; Site+Path form the whole URL.
	Path string
	// Status is the HTTP status code returned.
	Status int
	// Bytes is the number of response bytes transmitted by the server.
	Bytes int64
	// Referer is the redirecting site, if any.
	Referer string
	// BotName is the standardized bot name added by enrichment
	// (empty for anonymous agents).
	BotName string
	// Category is the Dark Visitors category display name added by
	// enrichment ("" or "Unknown" for anonymous agents).
	Category string
}

// IsRobotsFetch reports whether this access fetched robots.txt.
func (r *Record) IsRobotsFetch() bool {
	p := r.Path
	if i := strings.IndexAny(p, "?#"); i >= 0 {
		p = p[:i]
	}
	return p == "/robots.txt"
}

// Tuple identifies one requesting entity the way the paper's §4.2 does:
// the τ = (ASN, IP hash, user agent) triple.
type Tuple struct {
	ASN       string
	IPHash    string
	UserAgent string
}

// TupleOf returns the τ triple for a record.
func TupleOf(r *Record) Tuple {
	return Tuple{ASN: r.ASN, IPHash: r.IPHash, UserAgent: r.UserAgent}
}

// Dataset is an ordered collection of records with the aggregate helpers
// the analysis pipeline needs. The slice is the primary representation;
// helpers never mutate unless documented.
type Dataset struct {
	Records []Record
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// SortByTime orders records chronologically (stable, so equal timestamps
// keep ingest order).
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Records, func(i, j int) bool {
		return d.Records[i].Time.Before(d.Records[j].Time)
	})
}

// Filter returns a new dataset with only the records keep returns true for.
func (d *Dataset) Filter(keep func(*Record) bool) *Dataset {
	out := &Dataset{}
	for i := range d.Records {
		if keep(&d.Records[i]) {
			out.Records = append(out.Records, d.Records[i])
		}
	}
	return out
}

// ByTuple groups record indexes by τ triple, preserving record order
// within each group.
func (d *Dataset) ByTuple() map[Tuple][]int {
	out := make(map[Tuple][]int)
	for i := range d.Records {
		t := TupleOf(&d.Records[i])
		out[t] = append(out[t], i)
	}
	return out
}

// ByBot groups record indexes by standardized bot name, skipping records
// with no bot identification.
func (d *Dataset) ByBot() map[string][]int {
	out := make(map[string][]int)
	for i := range d.Records {
		if n := d.Records[i].BotName; n != "" {
			out[n] = append(out[n], i)
		}
	}
	return out
}

// TimeRange returns the earliest and latest record times. ok is false for
// an empty dataset.
func (d *Dataset) TimeRange() (first, last time.Time, ok bool) {
	if len(d.Records) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = d.Records[0].Time, d.Records[0].Time
	for i := range d.Records {
		t := d.Records[i].Time
		if t.Before(first) {
			first = t
		}
		if t.After(last) {
			last = t
		}
	}
	return first, last, true
}

// Overview holds the headline statistics of Table 2.
type Overview struct {
	UniqueIPs        int
	UniqueUserAgents int
	UniqueASNs       int
	TotalBytes       int64
	TotalVisits      int
	UniquePages      int
}

// Summarize computes a Table-2-style overview of the dataset (optionally
// restricted with keep; nil means all records).
func (d *Dataset) Summarize(keep func(*Record) bool) Overview {
	ips := make(map[string]struct{})
	uas := make(map[string]struct{})
	asns := make(map[string]struct{})
	pages := make(map[string]struct{})
	var o Overview
	for i := range d.Records {
		r := &d.Records[i]
		if keep != nil && !keep(r) {
			continue
		}
		ips[r.IPHash] = struct{}{}
		uas[r.UserAgent] = struct{}{}
		asns[r.ASN] = struct{}{}
		pages[r.Site+r.Path] = struct{}{}
		o.TotalBytes += r.Bytes
		o.TotalVisits++
	}
	o.UniqueIPs = len(ips)
	o.UniqueUserAgents = len(uas)
	o.UniqueASNs = len(asns)
	o.UniquePages = len(pages)
	return o
}
