package weblog

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecords() []Record {
	t0 := time.Date(2025, 2, 12, 0, 0, 0, 0, time.UTC)
	return []Record{
		{UserAgent: "Googlebot/2.1", Time: t0, IPHash: "aaaaaaaaaaaaaaaa", ASN: "GOOGLE", Site: "www", Path: "/", Status: 200, Bytes: 1000, BotName: "Googlebot", Category: "Search Engine Crawlers"},
		{UserAgent: "Googlebot/2.1", Time: t0.Add(10 * time.Second), IPHash: "aaaaaaaaaaaaaaaa", ASN: "GOOGLE", Site: "www", Path: "/people", Status: 200, Bytes: 2000, BotName: "Googlebot", Category: "Search Engine Crawlers"},
		{UserAgent: "GPTBot/1.2", Time: t0.Add(time.Minute), IPHash: "bbbbbbbbbbbbbbbb", ASN: "MICROSOFT-CORP-MSN-AS-BLOCK", Site: "dining", Path: "/menu", Status: 200, Bytes: 512, BotName: "GPTBot", Category: "AI Data Scrapers"},
		{UserAgent: "curl/8.0", Time: t0.Add(2 * time.Minute), IPHash: "cccccccccccccccc", ASN: "COMCAST-7922", Site: "www", Path: "/robots.txt", Status: 200, Bytes: 120},
	}
}

func TestTupleOf(t *testing.T) {
	r := sampleRecords()[0]
	tu := TupleOf(&r)
	if tu.ASN != "GOOGLE" || tu.IPHash != "aaaaaaaaaaaaaaaa" || tu.UserAgent != "Googlebot/2.1" {
		t.Errorf("TupleOf = %+v", tu)
	}
}

func TestIsRobotsFetch(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"/robots.txt", true},
		{"/robots.txt?cache=1", true},
		{"/robots.txt#frag", true},
		{"/page", false},
		{"/robots.txt.bak", false},
	}
	for _, c := range cases {
		r := Record{Path: c.path}
		if got := r.IsRobotsFetch(); got != c.want {
			t.Errorf("IsRobotsFetch(%q) = %v", c.path, got)
		}
	}
}

func TestSortByTimeStable(t *testing.T) {
	recs := sampleRecords()
	d := &Dataset{Records: []Record{recs[2], recs[0], recs[3], recs[1]}}
	d.SortByTime()
	for i := 1; i < d.Len(); i++ {
		if d.Records[i].Time.Before(d.Records[i-1].Time) {
			t.Fatal("not sorted")
		}
	}
}

func TestByTupleGrouping(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	groups := d.ByTuple()
	if len(groups) != 3 {
		t.Fatalf("got %d tuples, want 3", len(groups))
	}
	g := groups[Tuple{"GOOGLE", "aaaaaaaaaaaaaaaa", "Googlebot/2.1"}]
	if len(g) != 2 {
		t.Errorf("googlebot tuple has %d records, want 2", len(g))
	}
}

func TestByBotSkipsAnonymous(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	bots := d.ByBot()
	if _, ok := bots[""]; ok {
		t.Error("anonymous records must not be grouped")
	}
	if len(bots["Googlebot"]) != 2 || len(bots["GPTBot"]) != 1 {
		t.Errorf("bot grouping = %v", bots)
	}
}

func TestSummarize(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	o := d.Summarize(nil)
	if o.TotalVisits != 4 || o.UniqueIPs != 3 || o.UniqueASNs != 3 {
		t.Errorf("overview = %+v", o)
	}
	if o.TotalBytes != 3632 {
		t.Errorf("total bytes = %d", o.TotalBytes)
	}
	known := d.Summarize(func(r *Record) bool { return r.BotName != "" })
	if known.TotalVisits != 3 {
		t.Errorf("known-bot visits = %d, want 3", known.TotalVisits)
	}
}

func TestTimeRange(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	first, last, ok := d.TimeRange()
	if !ok || !first.Equal(d.Records[0].Time) || !last.Equal(d.Records[3].Time) {
		t.Errorf("range = %v..%v ok=%v", first, last, ok)
	}
	var empty Dataset
	if _, _, ok := empty.TimeRange(); ok {
		t.Error("empty dataset has no range")
	}
}

func TestAnonymizerDeterministicAndDistinct(t *testing.T) {
	a := NewAnonymizer([]byte("secret"))
	h1 := a.HashIP("192.0.2.1")
	h2 := a.HashIP("192.0.2.1")
	h3 := a.HashIP("192.0.2.2")
	if h1 != h2 {
		t.Error("hashing must be deterministic")
	}
	if h1 == h3 {
		t.Error("distinct IPs must hash differently")
	}
	if len(h1) != 16 {
		t.Errorf("hash length = %d, want 16", len(h1))
	}
}

func TestAnonymizerKeyed(t *testing.T) {
	a := NewAnonymizer([]byte("k1"))
	b := NewAnonymizer([]byte("k2"))
	if a.HashIP("192.0.2.1") == b.HashIP("192.0.2.1") {
		t.Error("different keys must produce different hashes")
	}
}

func TestAnonymizerCanonicalizesIP(t *testing.T) {
	a := NewAnonymizer(nil)
	if a.HashIP("192.0.2.1") != a.HashIP(" 192.0.2.1 ") {
		t.Error("whitespace must not change the hash")
	}
	if a.HashIP("2001:db8::1") != a.HashIP("2001:0db8:0000:0000:0000:0000:0000:0001") {
		t.Error("IPv6 forms must canonicalize to the same hash")
	}
}

func TestAnonymizeIdempotent(t *testing.T) {
	a := NewAnonymizer([]byte("x"))
	r := Record{IPHash: "192.0.2.55"}
	a.AnonymizeRecord(&r)
	once := r.IPHash
	a.AnonymizeRecord(&r)
	if r.IPHash != once {
		t.Error("anonymization must be idempotent on already-hashed values")
	}
}

func TestPreprocessorDropsAndCounts(t *testing.T) {
	p := NewPreprocessor()
	p.BlockIPHash("aaaaaaaaaaaaaaaa")
	p.BlockInternalASN("comcast-7922")
	d := &Dataset{Records: append(sampleRecords(), Record{
		UserAgent: "Mozilla/5.0 Nuclei/2.9", IPHash: "dddddddddddddddd", ASN: "OVH",
	})}
	out := p.Run(d)
	if out.Len() != 1 {
		t.Fatalf("got %d records after filtering, want 1", out.Len())
	}
	if p.Dropped.BlockedIP != 2 || p.Dropped.InternalASN != 1 || p.Dropped.ScannerUA != 1 {
		t.Errorf("drop counters = %+v", p.Dropped)
	}
	if p.TotalDropped() != 4 {
		t.Errorf("total dropped = %d", p.TotalDropped())
	}
}

func TestPreprocessorEnrich(t *testing.T) {
	p := NewPreprocessor()
	p.Enrich = func(r *Record) { r.BotName = "Enriched" }
	d := &Dataset{Records: sampleRecords()[:1]}
	out := p.Run(d)
	if out.Records[0].BotName != "Enriched" {
		t.Error("enrichment hook not applied")
	}
	if d.Records[0].BotName == "Enriched" {
		t.Error("input dataset must not be mutated")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestJSONLRoundTrip(t *testing.T) {
	d := &Dataset{Records: sampleRecords()}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("got %d records, want %d", got.Len(), want.Len())
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		if !w.Time.Equal(g.Time) {
			t.Errorf("record %d time %v != %v", i, g.Time, w.Time)
		}
		w.Time, g.Time = time.Time{}, time.Time{}
		if w != g {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestReadCSVBadRows(t *testing.T) {
	bad := []string{
		"useragent,timestamp\nx,not-a-time\n",
		"useragent,status\nx,NaN\n",
		"useragent,bytes\nx,many\n",
	}
	for _, s := range bad {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	d, err := ReadJSONL(strings.NewReader("\n{\"useragent\":\"x\"}\n\n"))
	if err != nil || d.Len() != 1 {
		t.Errorf("blank-line handling: %v, %d records", err, d.Len())
	}
	if _, err := ReadJSONL(strings.NewReader("{nope}\n")); err == nil {
		t.Error("garbage JSONL must error")
	}
}

func TestQuickHashAlwaysHexAnd16(t *testing.T) {
	a := NewAnonymizer([]byte("q"))
	f := func(ip string) bool {
		h := a.HashIP(ip)
		return looksHashed(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCSVRoundTripPreservesCount(t *testing.T) {
	f := func(n uint8, ua string) bool {
		// Build n records with quick-generated UA (control chars are the
		// CSV writer's concern; csv quoting must cope).
		d := &Dataset{}
		base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
		for i := 0; i < int(n%20); i++ {
			d.Records = append(d.Records, Record{
				UserAgent: strings.ToValidUTF8(strings.ReplaceAll(strings.ReplaceAll(ua, "\r", ""), "\n", ""), ""),
				Time:      base.Add(time.Duration(i) * time.Second),
				IPHash:    "0123456789abcdef",
				ASN:       "GOOGLE", Site: "www", Path: "/p", Status: 200, Bytes: int64(i),
			})
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		return err == nil && got.Len() == d.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
