// Package webserver serves the simulated site estate over real HTTP,
// reproducing the instrumented infrastructure side of the paper's study:
// every site serves its generated page tree, a sitemap, and a swappable
// robots.txt (support staff swapped the study site's file every two weeks;
// SetRobots is the programmatic equivalent), and every request is logged
// with the fields the paper's dataset carries.
//
// Client attribution: a real deployment derives the visitor IP from the
// TCP connection and the ASN from a routing table. In simulation both
// terminate on loopback, so crawlers declare their simulated origin via
// the X-Sim-IP and X-Sim-ASN request headers; the logging middleware
// prefers those and falls back to the socket address. This substitution is
// confined to log attribution and does not touch the crawl semantics.
package webserver

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/sitegen"
	"repro/internal/weblog"
)

// HeaderSimIP and HeaderSimASN carry simulated client attribution.
const (
	HeaderSimIP  = "X-Sim-IP"
	HeaderSimASN = "X-Sim-ASN"
)

// Collector receives one record per served request. Implementations must
// be safe for concurrent use.
type Collector interface {
	Collect(weblog.Record)
}

// MemoryCollector accumulates records in memory.
type MemoryCollector struct {
	mu      sync.Mutex
	records []weblog.Record

	// Anonymizer, if set, hashes the IP of every collected record.
	Anonymizer *weblog.Anonymizer
	// TimeBase/TimeScale, if TimeScale > 0, remap wall-clock timestamps
	// into virtual time: t' = TimeBase + (t - realBase) * TimeScale. This
	// lets a time-compressed crawl (sleeping milliseconds for simulated
	// seconds) produce logs with realistic second-scale pacing.
	TimeBase  time.Time
	TimeScale float64

	realBase time.Time
	baseOnce sync.Once
}

// Collect implements Collector.
func (c *MemoryCollector) Collect(r weblog.Record) {
	c.baseOnce.Do(func() { c.realBase = r.Time })
	if c.TimeScale > 0 {
		r.Time = c.TimeBase.Add(time.Duration(float64(r.Time.Sub(c.realBase)) * c.TimeScale))
	}
	if c.Anonymizer != nil {
		c.Anonymizer.AnonymizeRecord(&r)
	}
	c.mu.Lock()
	c.records = append(c.records, r)
	c.mu.Unlock()
}

// Dataset snapshots the collected records as a dataset.
func (c *MemoryCollector) Dataset() *weblog.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &weblog.Dataset{Records: make([]weblog.Record, len(c.records))}
	copy(out.Records, c.records)
	return out
}

// Len returns the number of collected records.
func (c *MemoryCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.records)
}

// StreamCollector forwards every collected record to a channel instead of
// accumulating them — the live-ingest counterpart of MemoryCollector, for
// feeding a streaming pipeline while the estate is still being crawled.
// Like MemoryCollector it can anonymize IPs and remap wall-clock
// timestamps into virtual time; unlike it, the virtual clock can be
// re-based mid-run (Rebase), which is how the phased experiment engine
// pins each crawl phase's records inside that phase's scheduled window.
type StreamCollector struct {
	// Anonymizer, if set, hashes the IP of every collected record.
	Anonymizer *weblog.Anonymizer
	// TimeScale, if > 0, compresses wall time into virtual time:
	// t' = virtualBase + (t - realBase) * TimeScale, with the bases set by
	// Rebase (or, if never re-based, by the first record).
	TimeScale float64

	ch chan weblog.Record

	mu          sync.Mutex
	virtualBase time.Time
	realBase    time.Time
	based       bool
	closed      bool
}

// NewStreamCollector builds a collector whose channel holds buffer pending
// records (minimum 1); a full channel blocks request handlers, which is
// the collector's backpressure.
func NewStreamCollector(buffer int) *StreamCollector {
	if buffer < 1 {
		buffer = 1
	}
	return &StreamCollector{ch: make(chan weblog.Record, buffer)}
}

// Records is the receive side: one record per served request, in collect
// order. It is closed by Close.
func (c *StreamCollector) Records() <-chan weblog.Record { return c.ch }

// Rebase anchors the virtual clock: records collected from now on map the
// current wall instant to virtualStart. The phased engine calls it once
// per phase, between the previous phase's last request and the next
// phase's first, so every phase's records land at the start of its
// scheduled window regardless of how long earlier phases took.
func (c *StreamCollector) Rebase(virtualStart time.Time) {
	c.mu.Lock()
	c.virtualBase = virtualStart
	c.realBase = time.Now()
	c.based = true
	c.mu.Unlock()
}

// Collect implements Collector: it remaps the timestamp, anonymizes, and
// forwards the record, blocking when the channel is full. Collect after
// Close is dropped (a straggling handler outliving the run loses its
// record rather than panicking).
func (c *StreamCollector) Collect(r weblog.Record) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if !c.based {
		c.virtualBase = r.Time
		c.realBase = r.Time
		c.based = true
	}
	if c.TimeScale > 0 {
		r.Time = c.virtualBase.Add(time.Duration(float64(r.Time.Sub(c.realBase)) * c.TimeScale))
	}
	if c.Anonymizer != nil {
		c.Anonymizer.AnonymizeRecord(&r)
	}
	c.ch <- r
	c.mu.Unlock()
}

// Close ends the stream: the Records channel is closed once every
// in-flight Collect has delivered.
func (c *StreamCollector) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
}

// Server serves one site.
type Server struct {
	site      *sitegen.Site
	collector Collector

	mu     sync.RWMutex
	robots []byte

	httpServer *http.Server
	listener   net.Listener
}

// NewServer wraps a site with the given initial robots.txt body and log
// collector (nil collector disables logging).
func NewServer(site *sitegen.Site, robotsBody []byte, collector Collector) *Server {
	return &Server{site: site, robots: robotsBody, collector: collector}
}

// Site returns the served site.
func (s *Server) Site() *sitegen.Site { return s.site }

// SetRobots atomically swaps the robots.txt body — the programmatic
// equivalent of the paper's biweekly file swap.
func (s *Server) SetRobots(body []byte) {
	s.mu.Lock()
	s.robots = body
	s.mu.Unlock()
}

// RobotsBody returns the current robots.txt body.
func (s *Server) RobotsBody() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.robots
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var (
		status int
		body   []byte
	)
	switch {
	case r.URL.Path == "/robots.txt":
		status, body = http.StatusOK, s.RobotsBody()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	case r.URL.Path == "/sitemap.xml":
		status = http.StatusOK
		body = []byte(s.site.SitemapXML("http://" + r.Host))
		w.Header().Set("Content-Type", "application/xml")
	default:
		if page, ok := s.site.Lookup(r.URL.Path); ok {
			status = http.StatusOK
			body = sitegen.PageBody(s.site, page)
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
		} else {
			status = http.StatusNotFound
			body = []byte("<!doctype html><html><body>not found</body></html>")
		}
	}
	// Log before writing the response: the client can only observe a
	// completed request after its record exists, so a supervisor that
	// waits for the crawl to finish and then rotates robots.txt (the
	// phased experiment engine) never races a straggling log write across
	// the phase boundary.
	if s.collector != nil {
		s.collector.Collect(weblog.Record{
			UserAgent: r.UserAgent(),
			Time:      time.Now(),
			IPHash:    clientIP(r),
			ASN:       r.Header.Get(HeaderSimASN),
			Site:      s.site.Name,
			Path:      r.URL.RequestURI(),
			Status:    status,
			Bytes:     int64(len(body)),
			Referer:   r.Referer(),
		})
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// clientIP prefers the simulated identity header, falling back to the
// socket peer address.
func clientIP(r *http.Request) string {
	if ip := r.Header.Get(HeaderSimIP); ip != "" {
		return ip
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Start begins serving on a loopback listener and returns the base URL
// ("http://127.0.0.1:PORT"). Call Close to stop.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("webserver: listening: %w", err)
	}
	s.listener = ln
	s.httpServer = &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpServer.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close stops the server (no-op if never started).
func (s *Server) Close() error {
	if s.httpServer == nil {
		return nil
	}
	return s.httpServer.Close()
}

// Estate runs servers for many sites and tracks their base URLs.
type Estate struct {
	Servers []*Server
	URLs    []string
}

// StartEstate launches one server per site, all sharing a collector and an
// initial robots.txt body chosen per site by robotsFor (nil means the
// permissive base version for every site).
func StartEstate(sites []sitegen.Site, collector Collector, robotsFor func(*sitegen.Site) []byte) (*Estate, error) {
	e := &Estate{}
	for i := range sites {
		site := &sites[i]
		var body []byte
		if robotsFor != nil {
			body = robotsFor(site)
		}
		srv := NewServer(site, body, collector)
		url, err := srv.Start()
		if err != nil {
			e.Close()
			return nil, err
		}
		e.Servers = append(e.Servers, srv)
		e.URLs = append(e.URLs, url)
	}
	return e, nil
}

// SetRobots swaps every server's robots.txt body, chosen per site by
// robotsFor — the estate-wide deployment a schedule rotation performs at
// each phase boundary.
func (e *Estate) SetRobots(robotsFor func(*sitegen.Site) []byte) {
	for _, srv := range e.Servers {
		srv.SetRobots(robotsFor(srv.site))
	}
}

// ServerFor returns the server and URL for a site name.
func (e *Estate) ServerFor(name string) (*Server, string, bool) {
	for i, srv := range e.Servers {
		if strings.EqualFold(srv.site.Name, name) {
			return srv, e.URLs[i], true
		}
	}
	return nil, "", false
}

// Close stops every server.
func (e *Estate) Close() {
	for _, srv := range e.Servers {
		_ = srv.Close()
	}
}
