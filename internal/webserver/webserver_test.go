package webserver

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/robots"
	"repro/internal/sitegen"
	"repro/internal/weblog"
)

func startOne(t *testing.T, collector Collector) (*Server, string) {
	t.Helper()
	sites := sitegen.Generate(1)
	srv := NewServer(&sites[0], robots.BuildVersion(robots.VersionBase, ""), collector)
	url, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, url
}

func get(t *testing.T, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", "TestBot/1.0")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestServesPagesAndRobotsAndSitemap(t *testing.T) {
	col := &MemoryCollector{}
	_, base := startOne(t, col)

	resp, body := get(t, base+"/robots.txt", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "User-agent: *") {
		t.Errorf("robots.txt: %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/sitemap.xml", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "<urlset") {
		t.Errorf("sitemap: %d", resp.StatusCode)
	}
	resp, body = get(t, base+"/", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "<!doctype html>") {
		t.Errorf("home page: %d", resp.StatusCode)
	}
	resp, _ = get(t, base+"/definitely-missing", nil)
	if resp.StatusCode != 404 {
		t.Errorf("missing page status = %d", resp.StatusCode)
	}
	if col.Len() != 4 {
		t.Errorf("collected %d records, want 4", col.Len())
	}
}

func TestSetRobotsSwapsAtomically(t *testing.T) {
	srv, base := startOne(t, nil)
	srv.SetRobots(robots.BuildVersion(robots.Version3, ""))
	_, body := get(t, base+"/robots.txt", nil)
	if !strings.Contains(body, "Disallow: /") {
		t.Errorf("swapped robots.txt not served: %q", body)
	}
}

func TestLoggingAttribution(t *testing.T) {
	col := &MemoryCollector{}
	_, base := startOne(t, col)
	get(t, base+"/", map[string]string{
		HeaderSimIP:  "198.51.100.7",
		HeaderSimASN: "GOOGLE",
	})
	d := col.Dataset()
	if d.Len() != 1 {
		t.Fatalf("records = %d", d.Len())
	}
	r := d.Records[0]
	if r.IPHash != "198.51.100.7" || r.ASN != "GOOGLE" || r.UserAgent != "TestBot/1.0" {
		t.Errorf("record = %+v", r)
	}
	if r.Site == "" || r.Path != "/" || r.Bytes <= 0 {
		t.Errorf("record fields = %+v", r)
	}
}

func TestSocketFallbackAttribution(t *testing.T) {
	col := &MemoryCollector{}
	_, base := startOne(t, col)
	get(t, base+"/", nil)
	r := col.Dataset().Records[0]
	if r.IPHash != "127.0.0.1" {
		t.Errorf("fallback IP = %q", r.IPHash)
	}
}

func TestCollectorAnonymizes(t *testing.T) {
	col := &MemoryCollector{Anonymizer: weblog.NewAnonymizer([]byte("k"))}
	_, base := startOne(t, col)
	get(t, base+"/", map[string]string{HeaderSimIP: "198.51.100.7"})
	r := col.Dataset().Records[0]
	if r.IPHash == "198.51.100.7" || len(r.IPHash) != 16 {
		t.Errorf("IP not anonymized: %q", r.IPHash)
	}
}

func TestCollectorTimeRemap(t *testing.T) {
	base := time.Date(2025, 2, 12, 0, 0, 0, 0, time.UTC)
	col := &MemoryCollector{TimeBase: base, TimeScale: 1000}
	now := time.Now()
	col.Collect(weblog.Record{Time: now})
	col.Collect(weblog.Record{Time: now.Add(30 * time.Millisecond)})
	d := col.Dataset()
	if !d.Records[0].Time.Equal(base) {
		t.Errorf("first record time = %v, want %v", d.Records[0].Time, base)
	}
	gap := d.Records[1].Time.Sub(d.Records[0].Time)
	if gap < 25*time.Second || gap > 35*time.Second {
		t.Errorf("virtual gap = %v, want ~30s", gap)
	}
}

func TestEstate(t *testing.T) {
	sites := sitegen.Generate(3)[:4]
	col := &MemoryCollector{}
	estate, err := StartEstate(sites, col, func(s *sitegen.Site) []byte {
		return robots.BuildVersion(robots.VersionBase, "")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer estate.Close()
	if len(estate.Servers) != 4 || len(estate.URLs) != 4 {
		t.Fatalf("estate size = %d/%d", len(estate.Servers), len(estate.URLs))
	}
	srv, url, ok := estate.ServerFor(sites[1].Name)
	if !ok || srv == nil || url == "" {
		t.Fatalf("ServerFor(%s) failed", sites[1].Name)
	}
	if _, _, ok := estate.ServerFor("no-such-site"); ok {
		t.Error("phantom site resolved")
	}
	resp, _ := get(t, url+"/robots.txt", nil)
	if resp.StatusCode != 200 {
		t.Errorf("estate robots status = %d", resp.StatusCode)
	}
}

func TestStreamCollectorForwardsInOrder(t *testing.T) {
	col := NewStreamCollector(8)
	now := time.Now()
	for i := 0; i < 3; i++ {
		col.Collect(weblog.Record{Path: "/p", Time: now.Add(time.Duration(i) * time.Second)})
	}
	col.Close()
	var got []weblog.Record
	for r := range col.Records() {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("received %d records, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !got[i].Time.After(got[i-1].Time) {
			t.Fatalf("records out of order: %v then %v", got[i-1].Time, got[i].Time)
		}
	}
}

func TestStreamCollectorRebase(t *testing.T) {
	col := NewStreamCollector(8)
	col.TimeScale = 1000
	phase1 := time.Date(2025, 2, 12, 0, 0, 0, 0, time.UTC)
	phase2 := phase1.Add(14 * 24 * time.Hour)

	col.Rebase(phase1)
	col.Collect(weblog.Record{Time: time.Now()})
	col.Collect(weblog.Record{Time: time.Now().Add(30 * time.Millisecond)})
	col.Rebase(phase2)
	col.Collect(weblog.Record{Time: time.Now()})
	col.Close()

	var got []weblog.Record
	for r := range col.Records() {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("received %d records, want 3", len(got))
	}
	// Records map to the phase start plus the (scaled) wall delay since
	// Rebase — a few virtual seconds at most here.
	if got[0].Time.Before(phase1) || got[0].Time.After(phase1.Add(time.Hour)) {
		t.Errorf("first record at %v, want within an hour after phase start %v", got[0].Time, phase1)
	}
	if gap := got[1].Time.Sub(got[0].Time); gap < 25*time.Second || gap > 35*time.Second {
		t.Errorf("virtual gap = %v, want ~30s", gap)
	}
	// The third record lands at (or a hair after) the second phase's start,
	// firmly inside its window.
	if got[2].Time.Before(phase2) || got[2].Time.After(phase2.Add(time.Hour)) {
		t.Errorf("re-based record at %v, want within an hour after %v", got[2].Time, phase2)
	}
}

func TestStreamCollectorCloseDropsStragglers(t *testing.T) {
	col := NewStreamCollector(8)
	col.Collect(weblog.Record{Path: "/a"})
	col.Close()
	col.Collect(weblog.Record{Path: "/late"}) // must not panic
	n := 0
	for range col.Records() {
		n++
	}
	if n != 1 {
		t.Fatalf("received %d records, want 1 (straggler dropped)", n)
	}
}

func TestEstateSetRobotsDeploysEverywhere(t *testing.T) {
	sites := sitegen.Generate(5)[:3]
	estate, err := StartEstate(sites, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer estate.Close()
	estate.SetRobots(func(*sitegen.Site) []byte {
		return robots.BuildVersion(robots.Version3, "")
	})
	for _, url := range estate.URLs {
		_, body := get(t, url+"/robots.txt", nil)
		if !strings.Contains(body, "Disallow: /") {
			t.Errorf("site %s not rotated: %q", url, body)
		}
	}
}

func TestQueryStringLogged(t *testing.T) {
	col := &MemoryCollector{}
	_, base := startOne(t, col)
	get(t, base+"/?q=1", nil)
	if p := col.Dataset().Records[0].Path; p != "/?q=1" {
		t.Errorf("logged path = %q", p)
	}
}
