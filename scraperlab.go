// Package scraperlab reproduces "Scrapers Selectively Respect robots.txt
// Directives: Evidence From a Large-Scale Empirical Study" (IMC 2025) as a
// Go library: an RFC 9309 robots.txt engine, a calibrated bot-population
// simulator, a concurrent crawler framework, an instrumented web-serving
// estate, and the full compliance-analysis pipeline that regenerates every
// table and figure of the paper's evaluation.
//
// This root package is the stable public facade; it re-exports the
// high-level Study API from internal/core. Start with NewStudy for the
// full reproduction, or CheckRobots for the one-call robots.txt primitive:
//
//	study, _ := scraperlab.NewStudy(scraperlab.Options{Seed: 1})
//	study.WriteAll(os.Stdout) // every table and figure
//
//	ok, delay, _ := scraperlab.CheckRobots(body, "GPTBot/1.2", "/private")
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package scraperlab

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/stream"
	"repro/internal/weblog"
)

// Options configures a Study; see core.Options.
type Options = core.Options

// Study is one full reproduction run; see core.Study.
type Study = core.Study

// LiveCrawlOptions configures a live HTTP fleet run.
type LiveCrawlOptions = core.LiveCrawlOptions

// NewStudy builds a study over the synthetic substrate.
func NewStudy(opts Options) (*Study, error) { return core.NewStudy(opts) }

// CheckRobots parses a robots.txt body and reports whether userAgent may
// fetch path, plus any requested crawl delay.
func CheckRobots(body []byte, userAgent, path string) (bool, time.Duration, error) {
	return core.CheckRobots(body, userAgent, path)
}

// LiveCrawl starts a real HTTP estate, drives the calibrated bot fleet
// against it, and returns the collected access log and per-bot stats.
func LiveCrawl(ctx context.Context, opts LiveCrawlOptions) (*weblog.Dataset, map[string]CrawlStats, error) {
	logs, stats, err := core.LiveCrawl(ctx, opts)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]CrawlStats, len(stats))
	for k, v := range stats {
		out[k] = CrawlStats{
			PagesFetched:  v.PagesFetched,
			Blocked:       v.Blocked,
			RobotsFetches: v.RobotsFetches,
			Errors:        v.Errors,
		}
	}
	return logs, out, nil
}

// CrawlStats summarizes one bot's live crawl.
type CrawlStats struct {
	// PagesFetched counts successful page fetches.
	PagesFetched int
	// Blocked counts fetches skipped in deference to robots.txt.
	Blocked int
	// RobotsFetches counts robots.txt requests.
	RobotsFetches int
	// Errors counts transport failures.
	Errors int
}

// StreamOptions configures StreamAnalyze; see core.StreamOptions.
type StreamOptions = core.StreamOptions

// MmapMode selects how the stream facades read at-rest file inputs
// (StreamOptions.Mmap); see core.MmapMode.
type MmapMode = core.MmapMode

// The mapping modes: map with quiet fallback (the default), require the
// mapping, or disable it; see core.MmapAuto and friends.
const (
	MmapAuto = core.MmapAuto
	MmapOn   = core.MmapOn
	MmapOff  = core.MmapOff
)

// StreamAggregates is the merged online-compliance snapshot a streaming
// run produces; see stream.Aggregates.
type StreamAggregates = stream.Aggregates

// StreamAnalyze ingests an access-log stream ("csv", "jsonl", or "clf")
// through the sharded online pipeline and returns compliance aggregates
// identical to the batch metrics (for input whose timestamp disorder
// stays within StreamOptions.MaxSkew, default 2 minutes), in
// O(shards + tuples) memory. The hot path is batched and pooled: records
// move through recycled record batches (StreamOptions.BatchSize, default
// 256) with byte-slice parsing and string interning, so steady-state
// ingestion allocates only for genuinely new column values; batch
// boundaries never affect results, and StreamOptions.FlushInterval bounds
// how stale a live snapshot can be on a slow stream. Wrap a growing file
// with NewTailReader to follow it live; cancel ctx to stop and keep the
// aggregates so far.
func StreamAnalyze(ctx context.Context, r io.Reader, opts StreamOptions) (*StreamAggregates, error) {
	return core.StreamAnalyze(ctx, r, opts)
}

// StreamResults is the merged multi-analyzer snapshot a streaming run
// produces; see stream.Results.
type StreamResults = stream.Results

// StreamAnalyzeAll runs the full online analyzer suite over an
// access-log stream: §4.2 compliance, §5.1 robots.txt re-check cadence,
// §5.2 dominant-ASN spoof detection, inactivity-gap sessionization, and
// online anomaly/alerting detection (select a subset with
// StreamOptions.Analyzers). Every batch-reproducible snapshot is
// identical to its batch counterpart on the same records whenever
// timestamp disorder stays within StreamOptions.MaxSkew.
func StreamAnalyzeAll(ctx context.Context, r io.Reader, opts StreamOptions) (*StreamResults, error) {
	return core.StreamAnalyzeAll(ctx, r, opts)
}

// StreamAnalyzeAllFiles runs the online analyzer suite over several log
// files at once — one access log per monitored site, the paper's true
// multi-source shape — through the pipeline's parallel fan-in: every
// file decodes on its own goroutine, and a per-source watermark merge
// keeps the merged analysis exact even when files lag each other
// arbitrarily. Set StreamOptions.DecodeParallelism above the file count
// to additionally split files into concurrently decoded record-aligned
// chunks. Snapshots are byte-identical to batch-analyzing the records
// concatenated in paths order and stably sorted by time, for any chunk
// and shard count — pass paths in a canonical order, since it breaks
// equal-timestamp ties.
func StreamAnalyzeAllFiles(ctx context.Context, paths []string, opts StreamOptions) (*StreamResults, error) {
	return core.StreamAnalyzeAllFiles(ctx, paths, opts)
}

// MergeCheckpoints folds checkpoint files written by several worker
// processes (StreamOptions.CheckpointDir runs over disjoint, per-site
// slices of the estate's traffic) into one estate-wide result set,
// byte-identical to a single process analyzing all the records — the
// cross-process form of the pipeline's commutative shard merge. opts
// supplies analyzer configuration (thresholds, windows, the experiment
// schedule for phase-partitioned checkpoints); nil opts.Analyzers uses
// the analyzer set the checkpoints record. See DESIGN.md, "Durable
// checkpoints".
func MergeCheckpoints(paths []string, opts StreamOptions) (*StreamResults, error) {
	return core.MergeCheckpoints(paths, opts)
}

// NewTailReader wraps a growing file so StreamAnalyze follows it,
// `tail -f` style, polling every poll interval until ctx is done.
func NewTailReader(ctx context.Context, r io.Reader, poll time.Duration) io.Reader {
	return stream.NewTailReader(ctx, r, poll)
}

// PhaseSchedule is a robots.txt rotation through time: which version is
// in force at every instant. Build one with DefaultPhaseSchedule,
// NewPhaseSchedule, or LoadPhaseSchedule; pass it as StreamOptions.Phases
// to phase-partition a streaming run, or to LivePhasedExperiment to drive
// a closed-loop rotation.
type PhaseSchedule = experiment.Schedule

// Phase is one deployment window of a PhaseSchedule.
type Phase = experiment.Phase

// NewPhaseSchedule builds a validated rotation from explicit phases; a
// non-zero end caps the last phase.
func NewPhaseSchedule(phases []Phase, end time.Time) (*PhaseSchedule, error) {
	return experiment.NewSchedule(phases, end)
}

// DefaultPhaseSchedule is the paper's rotation — baseline→v1→v2→v3, two
// weeks each — starting at start (zero = the paper's collection start).
func DefaultPhaseSchedule(start time.Time) *PhaseSchedule {
	return experiment.DefaultSchedule(start)
}

// LoadPhaseSchedule reads a phases.json rotation file (the format
// `analyze -experiment` consumes; see experiment.ParseSchedule).
func LoadPhaseSchedule(path string) (*PhaseSchedule, error) {
	return experiment.LoadSchedule(path)
}

// PhasedSnapshot is one analyzer's phase-partitioned snapshot; see
// stream.PhasedSnapshot. Retrieve one with StreamResults.Phased.
type PhasedSnapshot = stream.PhasedSnapshot

// LivePhasedOptions configures LivePhasedExperiment; see
// core.LivePhasedOptions.
type LivePhasedOptions = core.LivePhasedOptions

// LivePhasedResult is a closed-loop rotation's outcome; see
// core.LivePhasedResult.
type LivePhasedResult = core.LivePhasedResult

// LivePhasedExperiment runs the paper's controlled experiment as one live
// loop: a real HTTP estate rotates robots.txt through the schedule, the
// calibrated bot fleet reacts to each deployment, and every request
// streams straight into phase-partitioned online analyzers that emit the
// per-bot phase-vs-baseline compliance verdicts.
func LivePhasedExperiment(ctx context.Context, opts LivePhasedOptions) (*LivePhasedResult, error) {
	return core.LivePhasedExperiment(ctx, opts)
}

// ObservatoryOptions configures NewObservatory; see
// core.ObservatoryOptions.
type ObservatoryOptions = core.ObservatoryOptions

// Observatory is a resident instrumented streaming pipeline with an
// HTTP surface (/metrics, /healthz, /readyz, /api/v1/<analyzer>, SSE
// /events); see core.Observatory. cmd/scraperlabd is the standalone
// daemon over the same wiring.
type Observatory = core.Observatory

// StreamMetrics is the pipeline instrument set an Observatory exports
// on /metrics; see stream.Metrics. Attach one to a plain streaming run
// via StreamOptions.Metrics to get StreamResults.Ingest counters.
type StreamMetrics = stream.Metrics

// NewStreamMetrics builds a pipeline instrument set on its own
// registry, for StreamOptions.Metrics.
func NewStreamMetrics() *StreamMetrics { return stream.NewMetrics(nil) }

// NewObservatory builds the observatory: an instrumented pipeline whose
// watermark advances publish immutable snapshots, plus the HTTP surface
// over them. Mount Handler, call Run to ingest, Close when done.
func NewObservatory(opts ObservatoryOptions) (*Observatory, error) {
	return core.NewObservatory(opts)
}

// WriteDatasetCSV exports a dataset in the study's CSV schema.
func WriteDatasetCSV(w io.Writer, d *weblog.Dataset) error { return weblog.WriteCSV(w, d) }

// ReadDatasetCSV imports a dataset written by WriteDatasetCSV.
func ReadDatasetCSV(r io.Reader) (*weblog.Dataset, error) { return weblog.ReadCSV(r) }
