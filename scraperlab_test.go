package scraperlab

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/checkfreq"
	"repro/internal/compliance"
	"repro/internal/robots"
	"repro/internal/session"
	"repro/internal/spoof"
	"repro/internal/weblog"
)

func TestCheckRobotsFacade(t *testing.T) {
	body := []byte("User-agent: *\nDisallow: /private\nCrawl-delay: 12\n")
	ok, delay, err := CheckRobots(body, "AnyBot/1.0", "/public")
	if err != nil || !ok || delay != 12*time.Second {
		t.Errorf("CheckRobots = %v,%v,%v", ok, delay, err)
	}
	ok, _, _ = CheckRobots(body, "AnyBot/1.0", "/private/x")
	if ok {
		t.Error("private path must be disallowed")
	}
}

// TestEndToEndStudy runs the complete reproduction at small scale and
// verifies the paper's three headline findings emerge from the pipeline.
func TestEndToEndStudy(t *testing.T) {
	study, err := NewStudy(Options{Seed: 5, Scale: 0.1, Secret: []byte("integration")})
	if err != nil {
		t.Fatal(err)
	}

	// Finding 1 (RQ1): compliance decreases as directives get stricter.
	results := study.ComplianceResults()
	ct := compliance.BuildCategoryTable(results)
	if ct.DirectiveAvg[compliance.CrawlDelay] <= ct.DirectiveAvg[compliance.DisallowAll] {
		t.Errorf("RQ1 violated: crawl-delay %.3f <= disallow %.3f",
			ct.DirectiveAvg[compliance.CrawlDelay], ct.DirectiveAvg[compliance.DisallowAll])
	}

	// Finding 2 (RQ2): SEO crawlers most respectful, headless browsers
	// among the least.
	best, _ := ct.MostCompliantCategory()
	if best != "SEO Crawlers" {
		t.Errorf("RQ2: most compliant = %s", best)
	}
	if ct.CategoryAvg["Headless Browsers"] > 0.3 {
		t.Errorf("headless browsers suspiciously compliant: %.3f", ct.CategoryAvg["Headless Browsers"])
	}

	// Finding 3: spoofing exists and is a small minority of traffic.
	findings := study.Suite().SpoofFindings()
	if len(findings) == 0 {
		t.Error("no spoofing findings")
	}
	for _, f := range findings {
		if float64(f.SpoofedAccesses)/float64(f.Total) > 0.1 {
			t.Errorf("%s: spoofed fraction %.3f implausibly high", f.Bot,
				float64(f.SpoofedAccesses)/float64(f.Total))
		}
	}
}

func TestStudyDeterministicAcrossRuns(t *testing.T) {
	render := func() string {
		study, err := NewStudy(Options{Seed: 11, Scale: 0.04, Secret: []byte("det")})
		if err != nil {
			t.Fatal(err)
		}
		return study.Table3().String()
	}
	if render() != render() {
		t.Error("identical options must produce identical artifacts")
	}
}

func TestDatasetCSVRoundTripFacade(t *testing.T) {
	study, err := NewStudy(Options{Seed: 2, Scale: 0.02, Secret: []byte("csv")})
	if err != nil {
		t.Fatal(err)
	}
	d := study.Dataset()
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Errorf("round trip %d != %d records", back.Len(), d.Len())
	}
}

func TestLiveCrawlFacade(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	logs, stats, err := LiveCrawl(ctx, LiveCrawlOptions{
		Version:     robots.Version1,
		Bots:        []string{"AhrefsBot"},
		PagesPerBot: 3,
		Sites:       1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if logs.Len() == 0 {
		t.Fatal("no logs")
	}
	s := stats["AhrefsBot"]
	if s.PagesFetched == 0 || s.RobotsFetches == 0 {
		t.Errorf("AhrefsBot stats = %+v", s)
	}
}

// TestStreamAnalyzeFacade round-trips a study-schema dataset through the
// streaming facade and checks the online metrics against the batch
// compliance package on the identical records.
func TestStreamAnalyzeFacade(t *testing.T) {
	study, err := NewStudy(Options{Seed: 6, Scale: 0.02, Secret: []byte("stream")})
	if err != nil {
		t.Fatal(err)
	}
	d := study.Dataset()
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}

	agg, err := StreamAnalyze(context.Background(), bytes.NewReader(buf.Bytes()), StreamOptions{
		Format: "csv",
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Records == 0 || agg.Tuples == 0 {
		t.Fatalf("empty aggregates: %+v", agg)
	}

	// The batch ground truth: re-read the same bytes, preprocess + enrich
	// the way StreamAnalyze does internally, and measure.
	batch, err := ReadDatasetCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := compliance.DefaultConfig()
	want := compliance.Summarize(enrichLikeSuite(batch), compliance.DisallowAll, cfg)
	got := agg.Summary(compliance.DisallowAll)
	for bot, m := range want.Measurements {
		if got.Measurements[bot] != m {
			t.Errorf("bot %s: stream %+v != batch %+v", bot, got.Measurements[bot], m)
		}
	}
	if len(got.Measurements) != len(want.Measurements) {
		t.Errorf("bot set sizes differ: stream %d, batch %d", len(got.Measurements), len(want.Measurements))
	}
}

// enrichLikeSuite applies the default preprocessing the streaming facade
// and the experiment suite share.
func enrichLikeSuite(d *weblog.Dataset) *weblog.Dataset {
	pre := weblog.NewPreprocessor()
	m := agent.NewMatcher(nil)
	pre.Enrich = func(r *weblog.Record) {
		if b, ok := m.Match(r.UserAgent); ok {
			r.BotName = b.Name
			r.Category = b.Category.String()
		} else {
			r.BotName = ""
			r.Category = ""
		}
	}
	return pre.Run(d)
}

func TestWriteAllMentionsEveryArtifact(t *testing.T) {
	study, err := NewStudy(Options{Seed: 4, Scale: 0.02, Secret: []byte("all")})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := study.WriteAll(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, artifact := range []string{"Table 2", "Table 5", "Table 10", "Figure 9", "Figure 10", "Figure 11"} {
		if !strings.Contains(out, artifact) {
			t.Errorf("WriteAll missing %s", artifact)
		}
	}
}

// TestStreamAnalyzeAllFacade runs the full analyzer suite through the
// facade and checks every snapshot against its batch counterpart on the
// identical records.
func TestStreamAnalyzeAllFacade(t *testing.T) {
	study, err := NewStudy(Options{Seed: 7, Scale: 0.02, Secret: []byte("all-stream")})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, study.Dataset()); err != nil {
		t.Fatal(err)
	}

	res, err := StreamAnalyzeAll(context.Background(), bytes.NewReader(buf.Bytes()), StreamOptions{
		Format: "csv",
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"compliance", "cadence", "spoof", "session"} {
		if res.Get(name) == nil {
			t.Fatalf("analyzer %q missing from results", name)
		}
	}

	batchRaw, err := ReadDatasetCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	batch := enrichLikeSuite(batchRaw)

	wantSessions := session.Summarize(session.Sessionize(batch, session.DefaultGap))
	if got := res.Sessions(); !reflect.DeepEqual(got, wantSessions) {
		t.Errorf("session summary diverged: stream %+v, batch %+v", got, wantSessions)
	}
	wantStats := checkfreq.Analyze(batch, nil, nil)
	if got := res.Cadence().Stats(); !reflect.DeepEqual(got, wantStats) {
		t.Errorf("cadence stats diverged")
	}
	var det spoof.Detector
	if got, want := res.Spoof().Counts, det.CountSplit(batch); got != want {
		t.Errorf("spoof counts diverged: stream %+v, batch %+v", got, want)
	}
	if res.Compliance() == nil || res.Compliance().Records == 0 {
		t.Error("compliance aggregates empty")
	}
}
