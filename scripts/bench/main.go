// Command bench runs the repository's headline benchmarks and appends one
// machine-readable data point to the performance trajectory: it executes
// `go test -bench` for the stream-vs-batch and phased-pipeline benchmarks,
// parses the result lines, and writes them to BENCH_<n>.json where n is
// one past the highest existing index. CI runs it with -benchtime 1x as a
// smoke check; longer local runs produce comparable points for tracking
// regressions across PRs.
//
// Usage:
//
//	go run ./scripts/bench                      # default pattern, 1x
//	go run ./scripts/bench -benchtime 2s        # a real measurement
//	go run ./scripts/bench -pattern 'Robots'    # any benchmark subset
//	go run ./scripts/bench -out bench-results   # separate directory
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix, e.g. "BenchmarkStreamVsBatch/stream-8".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value for every reported pair (ns/op, MB/s,
	// B/op, allocs/op, and custom metrics like retained-bytes).
	Metrics map[string]float64 `json:"metrics"`
}

// Point is one BENCH_<n>.json file: the benchmark results plus enough
// context to compare points across machines and commits.
type Point struct {
	// Time is the run's completion time (RFC 3339).
	Time string `json:"time"`
	// GoVersion, GOOS, GOARCH, and NumCPU describe the environment.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Pattern and Benchtime record the invocation.
	Pattern   string `json:"pattern"`
	Benchtime string `json:"benchtime"`
	// Results are the parsed benchmark lines in output order.
	Results []Result `json:"results"`
}

func main() {
	var (
		pattern   = flag.String("pattern", "StreamVsBatch", "benchmark name pattern passed to -bench")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		outDir    = flag.String("out", ".", "directory receiving BENCH_<n>.json")
		count     = flag.Int("count", 1, "go test -count value")
	)
	flag.Parse()
	if err := run(*pattern, *benchtime, *pkg, *outDir, *count); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(pattern, benchtime, pkg, outDir string, count int) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w\n%s", err, out.String())
	}

	results, err := parseBenchOutput(out.Bytes())
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched pattern %q", pattern)
	}

	point := Point{
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Pattern:   pattern,
		Benchtime: benchtime,
		Results:   results,
	}
	path, err := nextBenchPath(outDir)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	return nil
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts Result entries from `go test -bench` output.
// Metric pairs follow the name and iteration count as "value unit" tokens.
func parseBenchOutput(out []byte) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", sc.Text(), err)
		}
		r := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", sc.Text(), err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// nextBenchPath returns outDir/BENCH_<n>.json with n one past the highest
// existing index.
func nextBenchPath(outDir string) (string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		return "", err
	}
	next := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(outDir, fmt.Sprintf("BENCH_%d.json", next)), nil
}
