// Command bench runs the repository's headline benchmarks and appends one
// machine-readable data point to the performance trajectory: it executes
// `go test -bench` for the stream-vs-batch and phased-pipeline benchmarks,
// parses the result lines, and writes them to BENCH_<n>.json where n is
// one past the highest existing index. CI runs it with -benchtime 1x as a
// smoke check; longer local runs produce comparable points for tracking
// regressions across PRs.
//
// Each point also carries -benchmem-derived deltas against the previous
// committed point (ns/op, B/op, allocs/op per benchmark), printed to
// stdout and embedded in the JSON, so the performance trajectory is
// readable file by file. With -maxregress the run becomes a gate: it fails
// when the stream path's allocs/op regresses more than the given fraction
// against the committed baseline. With -cpu the underlying `go test -cpu`
// list records multi-core scaling points in one file (the stream
// benchmarks size their parallel ingestion front-end to GOMAXPROCS, and
// also report a peak-heap-bytes metric per run); the deltas and the
// regression gate always compare the list's FIRST entry against the
// baseline, so `-cpu 1,4` keeps the 1-CPU trajectory comparable while
// the 4-CPU results ride along in the same point.
//
// Scaling honesty: every point records the hardware's num_cpu AND the
// runner's gomaxprocs, and any entry whose requested -cpu exceeds the
// hardware cores is marked "timeshared": true (with a stderr warning) —
// those entries measure goroutine scheduling overhead on one core, not
// scaling, and must never be read as a multi-core datapoint. With
// -minspeedup the run additionally gates on real scaling: the stream
// benchmark's highest -cpu entry must beat its lowest by the given factor
// in ns/op, and a timeshared high entry fails the gate outright instead of
// vacuously passing.
//
// Usage:
//
//	go run ./scripts/bench                      # default pattern, 1x
//	go run ./scripts/bench -benchtime 2s        # a real measurement
//	go run ./scripts/bench -pattern 'Robots'    # any benchmark subset
//	go run ./scripts/bench -cpu 1,4             # record multi-core scaling
//	go run ./scripts/bench -out bench-results   # separate directory
//	go run ./scripts/bench -maxregress 0.10     # gate on stream allocs/op
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks and the
	// GOMAXPROCS suffix, e.g. "BenchmarkStreamVsBatch/stream-8".
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value for every reported pair (ns/op, MB/s,
	// B/op, allocs/op, and custom metrics like retained-bytes).
	Metrics map[string]float64 `json:"metrics"`
	// Timeshared marks an entry whose requested GOMAXPROCS exceeds the
	// machine's cores: its goroutines timeshared one core, so it measures
	// scheduling overhead, not scaling — a 1-CPU container must never
	// masquerade as a multi-core datapoint (BENCH_2's -cpu 4 entries did).
	Timeshared bool `json:"timeshared,omitempty"`
}

// Point is one BENCH_<n>.json file: the benchmark results plus enough
// context to compare points across machines and commits.
type Point struct {
	// Time is the run's completion time (RFC 3339).
	Time string `json:"time"`
	// GoVersion, GOOS, GOARCH, NumCPU, and GOMAXPROCS describe the
	// environment. NumCPU is the hardware (what scaling claims must be
	// judged against); GOMAXPROCS is the runner's configured parallelism
	// (CI pins 4), which individual -cpu entries override per run.
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Pattern and Benchtime record the invocation; Cpu is the
	// `go test -cpu` list when one was passed.
	Pattern   string `json:"pattern"`
	Benchtime string `json:"benchtime"`
	Cpu       string `json:"cpu,omitempty"`
	// Results are the parsed benchmark lines in output order.
	Results []Result `json:"results"`
	// Baseline names the previous point the deltas compare against, when
	// one exists.
	Baseline string `json:"baseline,omitempty"`
	// Deltas maps benchmark name to per-metric fractional change vs the
	// baseline ((new-old)/old) for the headline metrics ns/op, B/op, and
	// allocs/op. Negative is an improvement.
	Deltas map[string]map[string]float64 `json:"deltas,omitempty"`
}

// deltaMetrics are the metrics the trajectory tracks point to point.
var deltaMetrics = []string{"ns/op", "B/op", "allocs/op"}

// gateBenchmark and gateMetric define the regression gate: the streaming
// hot path's allocation count, the number PR 4 exists to keep down.
const (
	gateBenchmark = "BenchmarkStreamVsBatch/stream"
	gateMetric    = "allocs/op"
)

func main() {
	var (
		pattern    = flag.String("pattern", "StreamVsBatch|SnapshotReads|FanInScaling|DecodeOnly", "benchmark name pattern passed to -bench")
		benchtime  = flag.String("benchtime", "1x", "go test -benchtime value")
		cpu        = flag.String("cpu", "", "go test -cpu list, e.g. 1,4 (empty = GOMAXPROCS only); deltas and the gate compare the first entry")
		pkg        = flag.String("pkg", ".", "package to benchmark")
		outDir     = flag.String("out", ".", "directory receiving BENCH_<n>.json")
		count      = flag.Int("count", 1, "go test -count value")
		baseline   = flag.String("baseline", ".", "directory holding the committed BENCH_<n>.json trajectory to delta against (empty disables)")
		maxRegress = flag.Float64("maxregress", -1, "fail when "+gateBenchmark+" "+gateMetric+" regresses more than this fraction vs the baseline (negative disables)")
		minSpeedup = flag.Float64("minspeedup", -1, "fail unless "+gateBenchmark+"'s highest -cpu entry beats its lowest by this factor in ns/op, on real cores (negative disables)")
	)
	flag.Parse()
	if err := run(*pattern, *benchtime, *cpu, *pkg, *outDir, *count, *baseline, *maxRegress, *minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(pattern, benchtime, cpu, pkg, outDir string, count int, baselineDir string, maxRegress, minSpeedup float64) error {
	args := []string{"test", "-run", "^$",
		"-bench", pattern, "-benchtime", benchtime, "-benchmem",
		"-count", strconv.Itoa(count)}
	if cpu != "" {
		args = append(args, "-cpu", cpu)
	}
	cmd := exec.Command("go", append(args, pkg)...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w\n%s", err, out.String())
	}

	results, err := parseBenchOutput(out.Bytes())
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched pattern %q", pattern)
	}

	point := Point{
		Time:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Pattern:    pattern,
		Benchtime:  benchtime,
		Cpu:        cpu,
		Results:    results,
	}
	if n := annotateTimeshared(point.Results, point.NumCPU); n > 0 {
		fmt.Fprintf(os.Stderr, "bench: WARNING: %d entries requested more procs than the machine's %d cores and are marked timeshared — they measure scheduling overhead, not scaling\n", n, point.NumCPU)
	}

	var base *Point
	var basePath string
	if baselineDir != "" {
		base, basePath, err = latestBenchPoint(baselineDir)
		if err != nil {
			return err
		}
	}
	if base != nil {
		point.Baseline = filepath.Base(basePath)
		point.Deltas = computeDeltas(base, &point)
		printDeltas(point.Baseline, point.Deltas)
	}

	path, err := nextBenchPath(outDir)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(point, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))

	if maxRegress >= 0 && base != nil {
		if err := gateRegression(base, &point, maxRegress); err != nil {
			return err
		}
	}
	if minSpeedup >= 0 {
		if err := gateScaling(&point, minSpeedup); err != nil {
			return err
		}
	}
	return nil
}

// requestedProcs extracts the GOMAXPROCS a result ran at from the "-N"
// suffix go test appends (only when N > 1); a name without one ran at 1.
// Sub-benchmark names in this repo never end in a bare "-<digits>" token
// of their own (parameter axes use "=" separators), so the suffix is
// unambiguous.
func requestedProcs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n < 1 {
		return 1
	}
	return n
}

// annotateTimeshared flags every result whose requested parallelism
// exceeds the machine's cores, returning how many were flagged.
func annotateTimeshared(results []Result, numCPU int) int {
	flagged := 0
	for i := range results {
		if requestedProcs(results[i].Name) > numCPU {
			results[i].Timeshared = true
			flagged++
		}
	}
	return flagged
}

// gateScaling fails the run unless the stream benchmark's highest -cpu
// entry is faster than its lowest by at least minSpeedup× in ns/op — the
// guard against quietly reintroducing a dispatch serialization point. A
// timeshared high entry fails outright: a machine without the cores
// cannot witness scaling either way, and passing it through would let a
// 1-CPU container greenlight (or block) a multi-core claim.
func gateScaling(cur *Point, minSpeedup float64) error {
	var loProcs, hiProcs int
	var loNs, hiNs float64
	var hiShared bool
	for _, r := range cur.Results {
		if trimProcSuffix(r.Name) != gateBenchmark {
			continue
		}
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		procs := requestedProcs(r.Name)
		if loProcs == 0 || procs < loProcs {
			loProcs, loNs = procs, ns
		}
		if procs > hiProcs {
			hiProcs, hiNs, hiShared = procs, ns, r.Timeshared
		}
	}
	if loProcs == 0 || hiProcs <= loProcs {
		return fmt.Errorf("scaling gate: need %s at two -cpu settings (run with -cpu 1,N)", gateBenchmark)
	}
	if hiShared {
		return fmt.Errorf("scaling gate: %s-%d is timeshared (machine has %d cores) — scaling cannot be measured here", gateBenchmark, hiProcs, cur.NumCPU)
	}
	if hiNs <= 0 {
		return fmt.Errorf("scaling gate: %s-%d reported no ns/op", gateBenchmark, hiProcs)
	}
	speedup := loNs / hiNs
	if speedup < minSpeedup {
		return fmt.Errorf("scaling gate: %s-%d is %.2fx faster than -%d, floor is %.2fx", gateBenchmark, hiProcs, speedup, loProcs, minSpeedup)
	}
	fmt.Printf("scaling gate ok: %s-%d is %.2fx faster than -%d (floor %.2fx)\n", gateBenchmark, hiProcs, speedup, loProcs, minSpeedup)
	return nil
}

// trimProcSuffix normalizes a benchmark name across machines by dropping
// the -GOMAXPROCS suffix go test appends when GOMAXPROCS > 1.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// metricsByName indexes a point's results by normalized benchmark name.
// When a -cpu list makes one benchmark appear several times, the FIRST
// occurrence (the list's first, lowest entry) wins: deltas and the
// regression gate track the single-core trajectory, and the multi-core
// results ride along in Results untouched.
func metricsByName(p *Point) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(p.Results))
	for _, r := range p.Results {
		name := trimProcSuffix(r.Name)
		if _, seen := out[name]; !seen {
			out[name] = r.Metrics
		}
	}
	return out
}

// computeDeltas builds the per-benchmark fractional changes of the
// headline metrics vs the baseline point. Like metricsByName, only a
// benchmark's first occurrence (the lowest -cpu entry) is compared, so
// a multi-core run never deltas against a single-core baseline.
func computeDeltas(base, cur *Point) map[string]map[string]float64 {
	baseBy := metricsByName(base)
	out := make(map[string]map[string]float64)
	seen := make(map[string]bool)
	for _, r := range cur.Results {
		name := trimProcSuffix(r.Name)
		if seen[name] {
			continue // a later -cpu variant of an already-compared bench
		}
		seen[name] = true
		bm, ok := baseBy[name]
		if !ok {
			continue
		}
		for _, metric := range deltaMetrics {
			nv, haveNew := r.Metrics[metric]
			bv, haveOld := bm[metric]
			if !haveNew || !haveOld || bv == 0 {
				continue
			}
			if out[name] == nil {
				out[name] = make(map[string]float64)
			}
			out[name][metric] = (nv - bv) / bv
		}
	}
	return out
}

// printDeltas renders the trajectory deltas, one line per benchmark.
func printDeltas(baseline string, deltas map[string]map[string]float64) {
	names := make([]string, 0, len(deltas))
	for name := range deltas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("vs %s: %s:", baseline, name)
		for _, metric := range deltaMetrics {
			if d, ok := deltas[name][metric]; ok {
				fmt.Printf(" %s %+.1f%%", metric, 100*d)
			}
		}
		fmt.Println()
	}
}

// gateRegression fails the run when the stream hot path's allocs/op
// regressed past the tolerated fraction.
func gateRegression(base, cur *Point, maxRegress float64) error {
	baseBy, curBy := metricsByName(base), metricsByName(cur)
	bv, okB := baseBy[gateBenchmark][gateMetric]
	nv, okN := curBy[gateBenchmark][gateMetric]
	if !okB || !okN {
		return fmt.Errorf("regression gate: %s %s missing from %s",
			gateBenchmark, gateMetric, map[bool]string{true: "current run", false: "baseline"}[okB])
	}
	if bv > 0 && (nv-bv)/bv > maxRegress {
		return fmt.Errorf("regression gate: %s %s regressed %.1f%% (%.0f -> %.0f), tolerance %.0f%%",
			gateBenchmark, gateMetric, 100*(nv-bv)/bv, bv, nv, 100*maxRegress)
	}
	fmt.Printf("regression gate ok: %s %s %.0f -> %.0f (tolerance %.0f%%)\n",
		gateBenchmark, gateMetric, bv, nv, 100*maxRegress)
	return nil
}

// latestBenchPoint loads the highest-numbered BENCH_<n>.json in dir,
// returning nil when none exists.
func latestBenchPoint(dir string) (*Point, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	best, bestPath := -1, ""
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > best {
			best, bestPath = n, filepath.Join(dir, e.Name())
		}
	}
	if best < 0 {
		return nil, "", nil
	}
	b, err := os.ReadFile(bestPath)
	if err != nil {
		return nil, "", err
	}
	var p Point
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, "", fmt.Errorf("parsing baseline %s: %w", bestPath, err)
	}
	return &p, bestPath, nil
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput extracts Result entries from `go test -bench` output.
// Metric pairs follow the name and iteration count as "value unit" tokens.
func parseBenchOutput(out []byte) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", sc.Text(), err)
		}
		r := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", sc.Text(), err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// nextBenchPath returns outDir/BENCH_<n>.json with n one past the highest
// existing index.
func nextBenchPath(outDir string) (string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		return "", err
	}
	next := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(outDir, fmt.Sprintf("BENCH_%d.json", next)), nil
}
