// Command checkdocs fails (exit 1) if any Go package in the repository
// lacks a package (godoc) comment, keeping `go doc` output complete. CI
// runs it as the docs gate:
//
//	go run ./scripts/checkdocs
//
// A package passes when at least one of its non-test files carries a doc
// comment on its package clause.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	pkgs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			pkgs[dir] = append(pkgs[dir], path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}

	var missing []string
	for dir, files := range pkgs {
		if !hasPackageDoc(files) {
			missing = append(missing, dir)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "checkdocs: package in %s has no package comment\n", dir)
		}
		os.Exit(1)
	}
}

// hasPackageDoc reports whether any file carries a doc comment on its
// package clause.
func hasPackageDoc(files []string) bool {
	fset := token.NewFileSet()
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			continue // the build/vet gates report syntax errors
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true
		}
	}
	return false
}
